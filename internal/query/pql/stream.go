package pql

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/provenance"
	"repro/internal/query/scan"
	"repro/internal/relalg"
	"repro/internal/store"
)

// This file is the streaming SELECT executor: it compiles a parsed
// SelectStmt onto the relalg iterator layer instead of materializing
// []map[string]string row sets. Virtual-table rows are flat []Val tuples
// (one small slice per row instead of a map with qualified and bare keys),
// WHERE conjuncts that touch only one side of a join are pushed below it,
// the sort key is carried through the pipeline so ORDER BY works on any
// addressable column (not just selected ones — the old re-scan wart), and
// leaf scans go through internal/query/scan, which fans out across shards
// in parallel on a sharded store. The eager path in exec.go stays as the
// conformance reference (ExecuteEager); Execute routes here.

// Explain reports how a streaming query ran: the join roles chosen, every
// operator's emitted-row count, the parallel scan width, and bytes
// allocated during execution.
type Explain struct {
	JoinOrder  []string // probe table first, then build tables
	Ops        []*relalg.OpStat
	Shards     int    // shards scanned in parallel; 0 = unsharded store
	AllocBytes uint64 // heap bytes allocated while executing
}

// String renders the explain report.
func (e *Explain) String() string {
	var b strings.Builder
	if len(e.JoinOrder) > 1 {
		fmt.Fprintf(&b, "join order: %s (probe) ⋈ %s (build)\n",
			e.JoinOrder[0], strings.Join(e.JoinOrder[1:], " ⋈ "))
	} else if len(e.JoinOrder) == 1 {
		fmt.Fprintf(&b, "scan: %s\n", e.JoinOrder[0])
	}
	if e.Shards > 1 {
		fmt.Fprintf(&b, "parallel leaf scan: %d shards\n", e.Shards)
	}
	for _, op := range e.Ops {
		fmt.Fprintf(&b, "  %-40s rows=%d\n", op.Label, op.Rows)
	}
	if e.AllocBytes > 0 {
		fmt.Fprintf(&b, "allocated: %d bytes\n", e.AllocBytes)
	}
	return b.String()
}

// ExecuteExplain evaluates a parsed query on the streaming path and
// returns the executed plan's counters alongside the result.
func ExecuteExplain(s store.Store, q *Query) (*Result, *Explain, error) {
	ex := &Explain{}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := executeWith(s, q, ex)
	runtime.ReadMemStats(&after)
	ex.AllocBytes = after.TotalAlloc - before.TotalAlloc
	if err != nil {
		return nil, nil, err
	}
	return res, ex, nil
}

func executeWith(s store.Store, q *Query, ex *Explain) (*Result, error) {
	switch {
	case q.LineageOf != "":
		ids, err := s.Closure(q.LineageOf, store.Up)
		if err != nil {
			return nil, err
		}
		if ex != nil {
			ex.JoinOrder = []string{"closure↑"}
		}
		return closureResult(s, ids)
	case q.DependsOf != "":
		ids, err := s.Closure(q.DependsOf, store.Down)
		if err != nil {
			return nil, err
		}
		if ex != nil {
			ex.JoinOrder = []string{"closure↓"}
		}
		return closureResult(s, ids)
	case q.Select != nil:
		return execSelectStream(s, q.Select, ex)
	}
	return nil, fmt.Errorf("pql: empty query")
}

// execSelectStream is the streaming counterpart of execSelect.
func execSelectStream(s store.Store, sel *SelectStmt, ex *Explain) (*Result, error) {
	lschema, ok := tableSchemas[sel.Table]
	if !ok {
		return nil, fmt.Errorf("pql: unknown table %q (have %s)", sel.Table, strings.Join(Tables(), ", "))
	}
	tables := []string{sel.Table}
	var rschema []string
	if sel.Join != nil {
		rschema, ok = tableSchemas[sel.Join.Table]
		if !ok {
			return nil, fmt.Errorf("pql: unknown JOIN table %q", sel.Join.Table)
		}
		tables = append(tables, sel.Join.Table)
	}

	// Column addressing: physical pipeline columns are qualified when a
	// join is present; addrIdx maps every addressable reference (bare when
	// unambiguous, plus qualified forms) to its physical position, and
	// addressable lists them in the same order the eager path exposes for
	// SELECT *.
	var physSchema, addressable []string
	addrIdx := map[string]int{}
	leftAddr := map[string]int{}  // refs resolving into the FROM table, local index
	rightAddr := map[string]int{} // refs resolving into the JOIN table, local index
	if sel.Join == nil {
		physSchema = lschema
		addressable = lschema
		for i, c := range lschema {
			addrIdx[c] = i
			leftAddr[c] = i
		}
	} else {
		ambiguous := map[string]bool{}
		for _, lc := range lschema {
			for _, rc := range rschema {
				if lc == rc {
					ambiguous[lc] = true
				}
			}
		}
		for i, c := range lschema {
			q := sel.Table + "." + c
			physSchema = append(physSchema, q)
			addrIdx[q] = i
			leftAddr[q] = i
			if !ambiguous[c] {
				addrIdx[c] = i
				leftAddr[c] = i
				addressable = append(addressable, c)
			}
			addressable = append(addressable, q)
		}
		for i, c := range rschema {
			q := sel.Join.Table + "." + c
			physSchema = append(physSchema, q)
			addrIdx[q] = len(lschema) + i
			rightAddr[q] = i
			if !ambiguous[c] {
				addrIdx[c] = len(lschema) + i
				rightAddr[c] = i
				addressable = append(addressable, c)
			}
			addressable = append(addressable, q)
		}
	}

	// WHERE pushdown: split the top-level AND conjunction; conjuncts whose
	// columns all resolve into one side run below the join, the rest after
	// it. Column resolution happens here at compile time, so an unknown
	// column is an error even when the eager evaluator's short-circuit
	// might have skipped it.
	var leftPred, rightPred, postPred relalg.Pred
	if sel.Where != nil {
		for _, conj := range splitAnd(sel.Where) {
			switch {
			case sel.Join != nil && resolvesWithin(conj, leftAddr):
				p, err := compilePred(conj, leftAddr)
				if err != nil {
					return nil, err
				}
				leftPred = andPred(leftPred, p)
			case sel.Join != nil && resolvesWithin(conj, rightAddr):
				p, err := compilePred(conj, rightAddr)
				if err != nil {
					return nil, err
				}
				rightPred = andPred(rightPred, p)
			default:
				p, err := compilePred(conj, addrIdx)
				if err != nil {
					return nil, err
				}
				postPred = andPred(postPred, p)
			}
		}
		if sel.Join == nil {
			// No join to push below: everything runs as one selection.
			leftPred, postPred = andPred(leftPred, postPred), nil
		}
	}

	// ON resolution mirrors the eager equijoin exactly.
	var li, ri int
	if sel.Join != nil {
		lc, rc, err := resolveOn(sel, lschema, rschema)
		if err != nil {
			return nil, err
		}
		li = indexOf(lschema, lc)
		ri = indexOf(rschema, rc)
	}

	// Leaf scans: one pass over the run logs fills every needed table
	// (the eager path re-scans the logs per table).
	leaves, shards, err := scanLeaves(s, tables)
	if err != nil {
		return nil, err
	}
	if ex != nil {
		ex.Shards = shards
		ex.JoinOrder = tables
	}

	wrap := func(it relalg.Iterator, label string) relalg.Iterator {
		if ex == nil {
			return it
		}
		st := &relalg.OpStat{Label: label}
		ex.Ops = append(ex.Ops, st)
		return relalg.Instrument(it, st)
	}

	leftSchema := physSchema
	if sel.Join != nil {
		leftSchema = physSchema[:len(lschema)]
	}
	var it relalg.Iterator = relalg.NewSliceScan(sel.Table, leftSchema, leaves[sel.Table])
	it = wrap(it, "scan("+sel.Table+")")
	if leftPred != nil {
		it = wrap(relalg.StreamSelect(it, leftPred), "select("+sel.Table+")")
	}
	if sel.Join != nil {
		var rit relalg.Iterator = relalg.NewSliceScan(sel.Join.Table, physSchema[len(lschema):], leaves[sel.Join.Table])
		rit = wrap(rit, "scan("+sel.Join.Table+")")
		if rightPred != nil {
			rit = wrap(relalg.StreamSelect(rit, rightPred), "select("+sel.Join.Table+")")
		}
		jit, err := relalg.StreamJoin(it, rit, leftSchema[li], physSchema[len(lschema)+ri], sel.Join.Table)
		if err != nil {
			return nil, err
		}
		it = wrap(jit, "join(⋈"+sel.Join.Table+")")
	}
	if postPred != nil {
		it = wrap(relalg.StreamSelect(it, postPred), "select(post-join)")
	}

	if sel.Count {
		n := 0
		if err := relalg.Drain(it, func(*relalg.Tuple) error { n++; return nil }); err != nil {
			return nil, err
		}
		return &Result{Columns: []string{"count"}, Rows: [][]string{{strconv.Itoa(n)}}}, nil
	}

	// ORDER BY runs before projection, carrying the sort key through the
	// pipeline: any addressable column works, selected or not.
	if sel.OrderBy != "" {
		oi, ok := addrIdx[sel.OrderBy]
		if !ok {
			return nil, fmt.Errorf("pql: ORDER BY column %q not in table %s", sel.OrderBy, sel.Table)
		}
		desc := sel.Desc
		sit, err := relalg.StreamSortBy(it, physSchema[oi], func(a, b relalg.Val) bool {
			less := compareLiteral(a.(string), b.(string)) < 0
			if desc {
				return !less
			}
			return less
		})
		if err != nil {
			return nil, err
		}
		it = wrap(sit, "sort("+sel.OrderBy+")")
	}
	if sel.Limit > 0 {
		it = wrap(relalg.StreamLimit(it, sel.Limit), fmt.Sprintf("limit(%d)", sel.Limit))
	}

	cols := sel.Columns
	if cols == nil {
		cols = addressable
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, ok := addrIdx[c]
		if !ok {
			return nil, fmt.Errorf("pql: no column %q (have %s)", c, strings.Join(addressable, ", "))
		}
		idx[i] = j
	}
	it = wrap(relalg.StreamBind(it, idx, cols), "project("+strings.Join(cols, ",")+")")

	res := &Result{Columns: append([]string(nil), cols...)}
	err = relalg.Drain(it, func(t *relalg.Tuple) error {
		row := make([]string, len(t.Values))
		for i, v := range t.Values {
			row[i] = v.(string)
		}
		res.Rows = append(res.Rows, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// resolveOn applies the eager equijoin's ON-reference rules and returns
// the join columns normalized so the first belongs to the FROM table.
func resolveOn(sel *SelectStmt, lschema, rschema []string) (lc, rc string, err error) {
	lcount := map[string]int{}
	for _, c := range lschema {
		lcount[c]++
	}
	resolve := func(ref string) (table, col string, err error) {
		if i := strings.IndexByte(ref, '.'); i > 0 {
			table, col = strings.ToLower(ref[:i]), ref[i+1:]
			if table != sel.Table && table != sel.Join.Table {
				return "", "", fmt.Errorf("pql: ON references unknown table %q", table)
			}
			return table, col, nil
		}
		inL := lcount[ref] > 0
		inR := indexOf(rschema, ref) >= 0
		switch {
		case inL && inR:
			return "", "", fmt.Errorf("pql: ON column %q is ambiguous; qualify it", ref)
		case inL:
			return sel.Table, ref, nil
		case inR:
			return sel.Join.Table, ref, nil
		}
		return "", "", fmt.Errorf("pql: ON column %q not found", ref)
	}
	lt, lcol, err := resolve(sel.Join.Left)
	if err != nil {
		return "", "", err
	}
	rt, rcol, err := resolve(sel.Join.Right)
	if err != nil {
		return "", "", err
	}
	if lt == rt {
		return "", "", fmt.Errorf("pql: ON must reference both tables")
	}
	if lt != sel.Table {
		lcol, rcol = rcol, lcol
	}
	if indexOf(lschema, lcol) < 0 {
		return "", "", fmt.Errorf("pql: ON column %q not in table %s", lcol, sel.Table)
	}
	if indexOf(rschema, rcol) < 0 {
		return "", "", fmt.Errorf("pql: ON column %q not in table %s", rcol, sel.Join.Table)
	}
	return lcol, rcol, nil
}

func indexOf(ss []string, want string) int {
	for i, s := range ss {
		if s == want {
			return i
		}
	}
	return -1
}

// splitAnd flattens the top-level AND spine of an expression.
func splitAnd(e Expr) []Expr {
	if b, ok := e.(*binExpr); ok && b.op == "and" {
		return append(splitAnd(b.l), splitAnd(b.r)...)
	}
	return []Expr{e}
}

// resolvesWithin reports whether every column the expression references is
// addressable in the given side-local map (i.e. the conjunct can be pushed
// below the join to that side).
func resolvesWithin(e Expr, side map[string]int) bool {
	switch x := e.(type) {
	case *cmpExpr:
		_, ok := side[x.col]
		return ok
	case *binExpr:
		return resolvesWithin(x.l, side) && resolvesWithin(x.r, side)
	}
	return false
}

// compilePred compiles an expression into a closure over a tuple's values,
// resolving columns through idx once instead of per row.
func compilePred(e Expr, idx map[string]int) (relalg.Pred, error) {
	switch x := e.(type) {
	case *cmpExpr:
		i, ok := idx[x.col]
		if !ok {
			return nil, fmt.Errorf("pql: unknown column %q in predicate", x.col)
		}
		op, want := x.op, x.val
		switch op {
		case "=", "!=", "<", ">", "<=", ">=", "like":
		default:
			return nil, fmt.Errorf("pql: unknown operator %q", op)
		}
		return func(vals []relalg.Val) bool {
			have := vals[i].(string)
			switch op {
			case "=":
				return compareLiteral(have, want) == 0
			case "!=":
				return compareLiteral(have, want) != 0
			case "<":
				return compareLiteral(have, want) < 0
			case ">":
				return compareLiteral(have, want) > 0
			case "<=":
				return compareLiteral(have, want) <= 0
			case ">=":
				return compareLiteral(have, want) >= 0
			}
			return matchLike(have, want)
		}, nil
	case *binExpr:
		l, err := compilePred(x.l, idx)
		if err != nil {
			return nil, err
		}
		r, err := compilePred(x.r, idx)
		if err != nil {
			return nil, err
		}
		if x.op == "and" {
			return func(vals []relalg.Val) bool { return l(vals) && r(vals) }, nil
		}
		return func(vals []relalg.Val) bool { return l(vals) || r(vals) }, nil
	}
	return nil, fmt.Errorf("pql: unknown expression %T", e)
}

func andPred(a, b relalg.Pred) relalg.Pred {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(vals []relalg.Val) bool { return a(vals) && b(vals) }
}

// scanLeaves fills the requested virtual tables in ONE pass over the run
// logs (parallel across shards on a sharded store), producing flat value
// tuples instead of the eager path's per-row maps.
func scanLeaves(s store.Store, tables []string) (map[string][]relalg.Tuple, int, error) {
	out := make(map[string][]relalg.Tuple, len(tables))
	want := map[string]bool{}
	for _, t := range tables {
		want[t] = true
		out[t] = nil
	}
	add := func(table string, vals ...string) {
		vs := make([]relalg.Val, len(vals))
		for i, v := range vals {
			vs[i] = v
		}
		out[table] = append(out[table], relalg.Tuple{Values: vs})
	}
	shards, err := scan.ShardedLogs(s, func(l *provenance.RunLog) error {
		if want["runs"] {
			add("runs", l.Run.ID, l.Run.WorkflowID, l.Run.WorkflowHash, l.Run.Agent, string(l.Run.Status))
		}
		if want["executions"] {
			for _, e := range l.Executions {
				add("executions", e.ID, e.RunID, e.ModuleID, e.ModuleType, string(e.Status), strconv.FormatInt(e.WallNanos, 10))
			}
		}
		if want["artifacts"] {
			for _, a := range l.Artifacts {
				add("artifacts", a.ID, a.RunID, a.Type, a.ContentHash, strconv.FormatInt(a.Size, 10))
			}
		}
		if want["uses"] || want["gens"] {
			for _, ev := range l.Events {
				if ev.Kind == provenance.EventArtifactUsed && want["uses"] {
					add("uses", ev.ExecutionID, ev.ArtifactID, ev.Port)
				}
				if ev.Kind == provenance.EventArtifactGen && want["gens"] {
					add("gens", ev.ExecutionID, ev.ArtifactID, ev.Port)
				}
			}
		}
		if want["annotations"] {
			for _, an := range l.Annotations {
				add("annotations", an.Subject, an.Key, an.Value, an.Author)
			}
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return out, shards, nil
}
