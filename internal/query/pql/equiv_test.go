package pql

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/store/shardedstore"
	"repro/internal/workloads"
)

// equivStores builds a MemStore and a 4-shard router holding the same
// multi-workflow provenance, so equivalence runs over both an unsharded
// and a parallel-scanned backend.
func equivStores(t *testing.T) []store.Store {
	t.Helper()
	col := provenance.NewCollector()
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	e := engine.New(engine.Options{Registry: reg, Recorder: col, Workers: 2, Agent: "equiv"})
	mem := store.NewMemStore()
	sharded := shardedstore.NewMem(4)
	for i, w := range []func() (string, error){
		func() (string, error) {
			r, err := e.Run(context.Background(), workloads.MedicalImaging(), nil)
			if err != nil {
				return "", err
			}
			return r.RunID, nil
		},
		func() (string, error) {
			r, err := e.Run(context.Background(), workloads.SmoothedImaging(), nil)
			if err != nil {
				return "", err
			}
			return r.RunID, nil
		},
		func() (string, error) {
			r, err := e.Run(context.Background(), workloads.Genomics("sample-1"), nil)
			if err != nil {
				return "", err
			}
			return r.RunID, nil
		},
		func() (string, error) {
			r, err := e.Run(context.Background(), workloads.Forecasting("station-A"), nil)
			if err != nil {
				return "", err
			}
			return r.RunID, nil
		},
	} {
		runID, err := w()
		if err != nil {
			t.Fatalf("workload %d: %v", i, err)
		}
		log, err := col.Log(runID)
		if err != nil {
			t.Fatalf("no log for %s: %v", runID, err)
		}
		if err := mem.PutRunLog(log); err != nil {
			t.Fatal(err)
		}
		if err := sharded.PutRunLog(log); err != nil {
			t.Fatal(err)
		}
	}
	return []store.Store{mem, sharded}
}

// TestStreamingMatchesEagerEndToEnd pins Execute (streaming) to
// ExecuteEager (reference) over MemStore and the 4-shard router on a
// battery spanning scans, pushdown-eligible WHEREs, joins, COUNT, ORDER
// BY and LIMIT. Queries avoid the two documented divergences (ORDER BY
// unselected columns; data-dependent unknown-column errors).
func TestStreamingMatchesEagerEndToEnd(t *testing.T) {
	queries := []string{
		"SELECT * FROM runs",
		"SELECT * FROM executions",
		"SELECT id, module FROM executions WHERE status = 'ok' ORDER BY id",
		"SELECT module FROM executions WHERE moduleType = 'Contour' OR moduleType = 'Render'",
		"SELECT COUNT(*) FROM artifacts",
		"SELECT COUNT(*) FROM executions WHERE status = 'ok'",
		"SELECT id, type FROM artifacts ORDER BY id DESC LIMIT 3",
		"SELECT * FROM gens JOIN artifacts ON artifact = artifacts.id",
		"SELECT exec, port, type FROM gens JOIN artifacts ON artifact = artifacts.id WHERE type = 'image' ORDER BY port",
		"SELECT module, artifact FROM executions JOIN gens ON executions.id = exec ORDER BY artifact",
		"SELECT module, artifact FROM executions JOIN uses ON executions.id = exec WHERE status = 'ok' ORDER BY artifact DESC LIMIT 4",
		"SELECT COUNT(*) FROM executions JOIN gens ON executions.id = exec WHERE moduleType LIKE '%o%'",
		"SELECT workflow, module FROM runs JOIN executions ON runs.id = run ORDER BY module LIMIT 10",
		"SELECT runs.id, executions.id FROM runs JOIN executions ON runs.id = run WHERE workflow LIKE 'medical%' ORDER BY executions.id",
		"SELECT subject, value FROM annotations",
	}
	for si, s := range equivStores(t) {
		for _, src := range queries {
			q, err := Parse(src)
			if err != nil {
				t.Fatalf("parse %q: %v", src, err)
			}
			want, werr := ExecuteEager(s, q)
			got, gerr := Execute(s, q)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("store %d %q: eager err=%v stream err=%v", si, src, werr, gerr)
			}
			if werr != nil {
				continue
			}
			if !reflect.DeepEqual(want.Columns, got.Columns) {
				t.Fatalf("store %d %q: columns %v vs %v", si, src, got.Columns, want.Columns)
			}
			if len(want.Rows) != len(got.Rows) {
				t.Fatalf("store %d %q: %d rows vs %d\n got=%v\nwant=%v", si, src, len(got.Rows), len(want.Rows), got.Rows, want.Rows)
			}
			for i := range want.Rows {
				if !reflect.DeepEqual(want.Rows[i], got.Rows[i]) {
					t.Fatalf("store %d %q: row %d %v vs %v", si, src, i, got.Rows[i], want.Rows[i])
				}
			}
		}
	}
}

// TestStreamingErrorParity pins the compile-time error surface: unknown
// tables/columns and bad ON references fail on both paths.
func TestStreamingErrorParity(t *testing.T) {
	s := equivStores(t)[0]
	for _, src := range []string{
		"SELECT * FROM ghosts",
		"SELECT nope FROM runs",
		"SELECT id FROM runs WHERE ghost = '1'",
		"SELECT * FROM runs JOIN ghosts ON id = id",
		"SELECT * FROM runs JOIN executions ON ghost = run",
		"SELECT * FROM runs JOIN executions ON id = id",
		"SELECT * FROM executions JOIN gens ON exec = exec",
		"SELECT id FROM runs ORDER BY ghost",
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Execute(s, q); err == nil {
			t.Fatalf("streaming accepted %q", src)
		}
		if _, err := ExecuteEager(s, q); err == nil {
			t.Fatalf("eager accepted %q", src)
		}
	}
}

// TestExplainCounters sanity-checks the explain surface over the sharded
// backend: probe/build order, 4-way scan fan-out, non-zero operator rows.
func TestExplainCounters(t *testing.T) {
	stores := equivStores(t)
	sharded := stores[1]
	q, err := Parse("SELECT module, artifact FROM executions JOIN gens ON executions.id = exec ORDER BY artifact")
	if err != nil {
		t.Fatal(err)
	}
	res, ex, err := ExecuteExplain(sharded, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	if ex.Shards != 4 {
		t.Fatalf("shards = %d", ex.Shards)
	}
	if len(ex.JoinOrder) != 2 || ex.JoinOrder[0] != "executions" || ex.JoinOrder[1] != "gens" {
		t.Fatalf("join order = %v", ex.JoinOrder)
	}
	var scanRows int64
	for _, op := range ex.Ops {
		if op.Label == "scan(executions)" {
			scanRows = op.Rows
		}
	}
	if scanRows == 0 {
		t.Fatalf("scan counter empty: %+v", ex.Ops)
	}
	if fmt.Sprint(ex) == "" || ex.String() == "" {
		t.Fatal("empty explain rendering")
	}
}
