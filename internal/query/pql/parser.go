package pql

import (
	"fmt"
	"strings"
)

// Query is the parsed AST. Exactly one of Select/Lineage/Dependents is set.
type Query struct {
	Select    *SelectStmt
	LineageOf string // entity ID
	DependsOf string // entity ID (DEPENDENTS OF)
}

// SelectStmt is SELECT cols FROM table [JOIN table2 ON a = b] [WHERE expr]
// [ORDER BY col [DESC]] [LIMIT n].
type SelectStmt struct {
	Columns []string // nil means '*'
	// Count is true for SELECT COUNT(*): the result is a single row with
	// the matching-row count.
	Count bool
	Table string
	// Join, when non-nil, adds an equijoin with a second table. Columns of
	// the joined row are addressable as "table.col"; bare names resolve
	// when unambiguous.
	Join    *JoinClause
	Where   Expr
	OrderBy string
	Desc    bool
	Limit   int // 0 means no limit
}

// JoinClause is JOIN table ON left = right.
type JoinClause struct {
	Table string
	Left  string // column reference, possibly qualified
	Right string
}

// Expr is a boolean expression over row fields.
type Expr interface {
	eval(row map[string]string) (bool, error)
}

// cmpExpr compares a column to a constant.
type cmpExpr struct {
	col string
	op  string // = != < > <= >= like
	val string
}

// binExpr combines two expressions with AND/OR.
type binExpr struct {
	op   string // and / or
	l, r Expr
}

type parser struct {
	toks []token
	i    int
}

// Parse parses a PQL query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("pql: trailing input at %d: %q", p.cur().pos, p.cur().text)
	}
	return q, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) keyword(word string) bool {
	if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, word) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(word string) error {
	if !p.keyword(word) {
		return fmt.Errorf("pql: expected %s at %d (got %q)", word, p.cur().pos, p.cur().text)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	switch {
	case p.keyword("LINEAGE"):
		if err := p.expectKeyword("OF"); err != nil {
			return nil, err
		}
		id, err := p.parseStringOrIdent()
		if err != nil {
			return nil, err
		}
		return &Query{LineageOf: id}, nil
	case p.keyword("DEPENDENTS"):
		if err := p.expectKeyword("OF"); err != nil {
			return nil, err
		}
		id, err := p.parseStringOrIdent()
		if err != nil {
			return nil, err
		}
		return &Query{DependsOf: id}, nil
	case p.keyword("SELECT"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Query{Select: sel}, nil
	}
	return nil, fmt.Errorf("pql: query must start with SELECT, LINEAGE or DEPENDENTS")
}

func (p *parser) parseStringOrIdent() (string, error) {
	t := p.next()
	if t.kind != tokString && t.kind != tokIdent {
		return "", fmt.Errorf("pql: expected identifier or string at %d", t.pos)
	}
	return t.text, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	s := &SelectStmt{}
	// Columns.
	if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, "COUNT") {
		p.i++
		for _, want := range []string{"(", "*", ")"} {
			if p.cur().kind != tokSymbol || p.cur().text != want {
				return nil, fmt.Errorf("pql: expected COUNT(*) at %d", p.cur().pos)
			}
			p.i++
		}
		s.Count = true
	} else if p.cur().kind == tokSymbol && p.cur().text == "*" {
		p.i++
	} else {
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("pql: expected column name at %d", t.pos)
			}
			s.Columns = append(s.Columns, t.text)
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.i++
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("pql: expected table name at %d", t.pos)
	}
	s.Table = strings.ToLower(t.text)
	if p.keyword("JOIN") {
		jt := p.next()
		if jt.kind != tokIdent {
			return nil, fmt.Errorf("pql: expected JOIN table at %d", jt.pos)
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		left := p.next()
		if left.kind != tokIdent {
			return nil, fmt.Errorf("pql: expected ON column at %d", left.pos)
		}
		if p.cur().kind != tokSymbol || p.cur().text != "=" {
			return nil, fmt.Errorf("pql: expected '=' in ON at %d", p.cur().pos)
		}
		p.i++
		right := p.next()
		if right.kind != tokIdent {
			return nil, fmt.Errorf("pql: expected ON column at %d", right.pos)
		}
		s.Join = &JoinClause{Table: strings.ToLower(jt.text), Left: left.text, Right: right.text}
	}
	if p.keyword("WHERE") {
		expr, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		s.Where = expr
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("pql: expected ORDER BY column at %d", t.pos)
		}
		s.OrderBy = t.text
		if p.keyword("DESC") {
			s.Desc = true
		} else {
			p.keyword("ASC")
		}
	}
	if p.keyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("pql: expected LIMIT count at %d", t.pos)
		}
		n := 0
		if _, err := fmt.Sscanf(t.text, "%d", &n); err != nil || n < 0 {
			return nil, fmt.Errorf("pql: bad LIMIT %q", t.text)
		}
		s.Limit = n
	}
	return s, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: "or", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: "and", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (Expr, error) {
	if p.cur().kind == tokSymbol && p.cur().text == "(" {
		p.i++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokSymbol || p.cur().text != ")" {
			return nil, fmt.Errorf("pql: expected ')' at %d", p.cur().pos)
		}
		p.i++
		return e, nil
	}
	col := p.next()
	if col.kind != tokIdent {
		return nil, fmt.Errorf("pql: expected column in predicate at %d", col.pos)
	}
	var op string
	switch {
	case p.cur().kind == tokSymbol:
		op = p.next().text
		switch op {
		case "=", "!=", "<", ">", "<=", ">=":
		default:
			return nil, fmt.Errorf("pql: unknown operator %q", op)
		}
	case p.keyword("LIKE"):
		op = "like"
	default:
		return nil, fmt.Errorf("pql: expected operator at %d", p.cur().pos)
	}
	val := p.next()
	if val.kind != tokString && val.kind != tokNumber && val.kind != tokIdent {
		return nil, fmt.Errorf("pql: expected literal at %d", val.pos)
	}
	return &cmpExpr{col: col.text, op: op, val: val.text}, nil
}
