package pql

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/workloads"
)

func pqlStore(t *testing.T) (store.Store, *engine.Result) {
	t.Helper()
	col := provenance.NewCollector()
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	e := engine.New(engine.Options{Registry: reg, Recorder: col, Workers: 1, Agent: "susan"})
	res, err := e.Run(context.Background(), workloads.MedicalImaging(), nil)
	if err != nil {
		t.Fatal(err)
	}
	col.Annotate(res.Artifacts["render.image"], provenance.KindArtifact, "note", "bone isosurface", "susan")
	log, _ := col.Log(res.RunID)
	s := store.NewMemStore()
	if err := s.PutRunLog(log); err != nil {
		t.Fatal(err)
	}
	return s, res
}

func TestSelectStar(t *testing.T) {
	s, _ := pqlStore(t)
	r, err := Run(s, "SELECT * FROM executions")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 || len(r.Columns) != 6 {
		t.Fatalf("result = %d rows %d cols", len(r.Rows), len(r.Columns))
	}
}

func TestSelectWhereEquality(t *testing.T) {
	s, _ := pqlStore(t)
	r, err := Run(s, "SELECT id, module FROM executions WHERE moduleType = 'Contour'")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][1] != "contour" {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestSelectAndOr(t *testing.T) {
	s, _ := pqlStore(t)
	r, err := Run(s, "SELECT module FROM executions WHERE moduleType = 'Contour' OR moduleType = 'Render'")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	r, err = Run(s, "SELECT module FROM executions WHERE moduleType = 'Contour' AND status = 'ok'")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
	r, err = Run(s, "SELECT module FROM executions WHERE (moduleType = 'Contour' OR moduleType = 'Render') AND status = 'failed'")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 0 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestSelectLike(t *testing.T) {
	s, _ := pqlStore(t)
	r, err := Run(s, "SELECT id FROM artifacts WHERE type LIKE 'ima%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 { // histogram plot + render image
		t.Fatalf("rows = %v", r.Rows)
	}
	r, err = Run(s, "SELECT id FROM artifacts WHERE id LIKE '%art%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	s, _ := pqlStore(t)
	r, err := Run(s, "SELECT id FROM artifacts ORDER BY id DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0] < r.Rows[1][0] {
		t.Fatalf("not descending: %v", r.Rows)
	}
}

func TestNumericComparison(t *testing.T) {
	s, _ := pqlStore(t)
	r, err := Run(s, "SELECT id FROM artifacts WHERE size > 100")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		_ = row
	}
	// All artifacts have positive size; ensure filtering actually works by
	// using an impossible bound.
	r2, err := Run(s, "SELECT id FROM artifacts WHERE size > 999999999")
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Rows) != 0 {
		t.Fatalf("rows = %v", r2.Rows)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no artifacts above 100 bytes")
	}
}

func TestAnnotationsTable(t *testing.T) {
	s, res := pqlStore(t)
	r, err := Run(s, "SELECT subject, value FROM annotations WHERE key = 'note'")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0] != res.Artifacts["render.image"] {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestUsesGensTables(t *testing.T) {
	s, res := pqlStore(t)
	r, err := Run(s, fmt.Sprintf("SELECT exec FROM uses WHERE artifact = '%s'", res.Artifacts["reader.data"]))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	r, err = Run(s, "SELECT exec, artifact FROM gens WHERE port = 'image'")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][1] != res.Artifacts["render.image"] {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestLineageOf(t *testing.T) {
	s, res := pqlStore(t)
	r, err := Run(s, fmt.Sprintf("LINEAGE OF '%s'", res.Artifacts["render.image"]))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("lineage rows = %v", r.Rows)
	}
	kinds := map[string]int{}
	for _, row := range r.Rows {
		kinds[row[1]]++
	}
	if kinds["artifact"] != 2 || kinds["execution"] != 3 {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestDependentsOf(t *testing.T) {
	s, res := pqlStore(t)
	r, err := Run(s, fmt.Sprintf("DEPENDENTS OF '%s'", res.Artifacts["reader.data"]))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("dependents rows = %v", r.Rows)
	}
}

func TestRunsTable(t *testing.T) {
	s, _ := pqlStore(t)
	r, err := Run(s, "SELECT agent, status FROM runs WHERE workflow = 'medimg'")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0] != "susan" || r.Rows[0][1] != "ok" {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DELETE FROM runs",
		"SELECT FROM runs",
		"SELECT id FROM",
		"SELECT id FROM runs WHERE",
		"SELECT id FROM runs WHERE id",
		"SELECT id FROM runs WHERE id = ",
		"SELECT id FROM runs ORDER",
		"SELECT id FROM runs LIMIT x",
		"SELECT id FROM runs trailing garbage",
		"LINEAGE 'x'",
		"SELECT id FROM runs WHERE id = 'unterminated",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("parsed invalid query %q", src)
		}
	}
}

func TestExecErrors(t *testing.T) {
	s, _ := pqlStore(t)
	if _, err := Run(s, "SELECT id FROM nope"); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := Run(s, "SELECT nope FROM runs"); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := Run(s, "SELECT id FROM runs WHERE ghost = '1'"); err == nil {
		t.Fatal("unknown predicate column accepted")
	}
	// ORDER BY an addressable-but-unselected column works on the streaming
	// path (the sort key is carried through the pipeline); the eager
	// reference still rejects it.
	if _, err := Run(s, "SELECT id FROM runs ORDER BY agent"); err != nil {
		t.Fatalf("ORDER BY unselected column: %v", err)
	}
	if q, err := Parse("SELECT id FROM runs ORDER BY agent"); err != nil {
		t.Fatal(err)
	} else if _, err := ExecuteEager(s, q); err == nil {
		t.Fatal("eager reference accepted ORDER BY unselected column")
	}
	if _, err := Run(s, "SELECT id FROM runs ORDER BY ghost"); err == nil {
		t.Fatal("ORDER BY unknown column accepted")
	}
	if _, err := Run(s, "LINEAGE OF 'ghost-artifact'"); err == nil {
		t.Fatal("lineage of unknown entity accepted")
	}
}

func TestStringEscaping(t *testing.T) {
	toks, err := lex("SELECT id FROM runs WHERE agent = 'O''Brien'")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tk := range toks {
		if tk.kind == tokString && tk.text == "O'Brien" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tokens = %+v", toks)
	}
}

func TestResultRendering(t *testing.T) {
	s, _ := pqlStore(t)
	r, err := Run(s, "SELECT module, status FROM executions ORDER BY module")
	if err != nil {
		t.Fatal(err)
	}
	text := r.String()
	if !strings.Contains(text, "module") || !strings.Contains(text, "contour") {
		t.Fatalf("rendering:\n%s", text)
	}
}

func TestWorksOnAllBackends(t *testing.T) {
	colctr := provenance.NewCollector()
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	e := engine.New(engine.Options{Registry: reg, Recorder: colctr, Workers: 1})
	res, err := e.Run(context.Background(), workloads.MedicalImaging(), nil)
	if err != nil {
		t.Fatal(err)
	}
	log, _ := colctr.Log(res.RunID)
	fs, err := store.OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	backends := []store.Store{store.NewMemStore(), store.NewRelStore(), store.NewTripleStore(), fs}
	for _, s := range backends {
		if err := s.PutRunLog(log); err != nil {
			t.Fatal(err)
		}
		r, err := Run(s, "SELECT module FROM executions WHERE status = 'ok' ORDER BY module")
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(r.Rows) != 4 || r.Rows[0][0] != "contour" {
			t.Fatalf("%s rows = %v", s.Name(), r.Rows)
		}
		s.Close()
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a%c", true},
		{"abc", "x%", false},
		{"abc", "%x", false},
		{"abc", "a%x%c", false},
		{"", "%", true},
	}
	for _, c := range cases {
		if got := matchLike(c.s, c.p); got != c.want {
			t.Fatalf("matchLike(%q, %q) = %v", c.s, c.p, got)
		}
	}
}
