package qbe

import (
	"context"
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/workloads"
)

// storeWithRuns executes medimg and genomics once each into a mem store
// and returns the store plus medimg's final image artifact ID.
func storeWithRuns(t *testing.T) (store.Store, string) {
	t.Helper()
	s := store.NewMemStore()
	var imageArt string
	for _, wf := range candidates()[:1] {
		col := provenance.NewCollector()
		reg := engine.NewRegistry()
		workloads.RegisterAll(reg)
		e := engine.New(engine.Options{Registry: reg, Recorder: col, Workers: 1})
		res, err := e.Run(context.Background(), wf, nil)
		if err != nil {
			t.Fatal(err)
		}
		log, _ := col.Log(res.RunID)
		if err := s.PutRunLog(log); err != nil {
			t.Fatal(err)
		}
		imageArt = res.Artifacts["render.image"]
	}
	return s, imageArt
}

func TestFilterByClosure(t *testing.T) {
	s, imageArt := storeWithRuns(t)
	f, err := Fragment("q", []string{"Contour", "Render"}, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Structural matches: medimg and dl-render both embed Contour->Render.
	ms := FindEmbeddings(f, candidates(), Options{})
	if len(ms) != 2 {
		t.Fatalf("matches = %+v", ms)
	}
	// Only medimg has a stored run contributing to the image's lineage, so
	// the provenance filter drops dl-render.
	got, err := FilterByClosure(s, ms, imageArt, store.Up)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].WorkflowID != "medimg" {
		t.Fatalf("filtered = %+v", got)
	}
	// Downstream of the final image is empty, but the entity itself still
	// anchors its own run's workflow.
	got, err = FilterByClosure(s, ms, imageArt, store.Down)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].WorkflowID != "medimg" {
		t.Fatalf("filtered down = %+v", got)
	}
	// Unknown entities propagate ErrNotFound.
	if _, err := FilterByClosure(s, ms, "ghost", store.Up); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("ghost err = %v", err)
	}
}
