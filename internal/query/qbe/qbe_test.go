package qbe

import (
	"testing"

	"repro/internal/workflow"
	"repro/internal/workloads"
)

func candidates() []*workflow.Workflow {
	return []*workflow.Workflow{
		workloads.MedicalImaging(),
		workloads.SmoothedImaging(),
		workloads.DownloadAndRender(),
		workloads.Genomics("s1"),
		workloads.Forecasting("st1"),
	}
}

func TestFragmentBuilds(t *testing.T) {
	f, err := Fragment("q", []string{"Contour", "Render"}, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Modules) != 2 || len(f.Connections) != 1 {
		t.Fatalf("fragment shape %d/%d", len(f.Modules), len(f.Connections))
	}
	if _, err := Fragment("q", []string{"A"}, [][2]int{{0, 5}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestFindEmbeddingsContourRender(t *testing.T) {
	// Contour feeding Render directly: matches medimg and dl-render, but
	// NOT the smoothed variant (smooth interposes).
	f, err := Fragment("q", []string{"Contour", "Render"}, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ms := FindEmbeddings(f, candidates(), Options{})
	if len(ms) != 2 {
		t.Fatalf("matches = %+v", ms)
	}
	ids := []string{ms[0].WorkflowID, ms[1].WorkflowID}
	if ids[0] != "dl-render" || ids[1] != "medimg" {
		t.Fatalf("ids = %v", ids)
	}
	// Embedding maps q0 -> contour module of the target.
	for _, m := range ms {
		if len(m.Embeddings) == 0 || m.Embeddings[0]["q0"] != "contour" {
			t.Fatalf("embedding = %+v", m.Embeddings)
		}
	}
}

func TestFindEmbeddingsSmoothPath(t *testing.T) {
	f, err := Fragment("q", []string{"Contour", "Smooth", "Render"}, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	ms := FindEmbeddings(f, candidates(), Options{})
	if len(ms) != 1 || ms[0].WorkflowID != "medimg-smooth" {
		t.Fatalf("matches = %+v", ms)
	}
}

func TestFindEmbeddingsSingleModule(t *testing.T) {
	f, err := Fragment("q", []string{"Histogram"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ms := FindEmbeddings(f, candidates(), Options{})
	if len(ms) != 2 { // medimg and medimg-smooth
		t.Fatalf("matches = %+v", ms)
	}
}

func TestFindEmbeddingsNoMatch(t *testing.T) {
	f, err := Fragment("q", []string{"NoSuchType"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ms := FindEmbeddings(f, candidates(), Options{}); len(ms) != 0 {
		t.Fatalf("matches = %+v", ms)
	}
}

func TestMatchParams(t *testing.T) {
	f, err := Fragment("q", []string{"Contour"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetParam("q0", "isovalue", "57"); err != nil {
		t.Fatal(err)
	}
	// All imaging workflows use isovalue 57.
	ms := FindEmbeddings(f, candidates(), Options{MatchParams: true})
	if len(ms) != 3 {
		t.Fatalf("matches = %+v", ms)
	}
	// Change the pattern param: no workflow matches.
	if err := f.SetParam("q0", "isovalue", "101"); err != nil {
		t.Fatal(err)
	}
	if ms := FindEmbeddings(f, candidates(), Options{MatchParams: true}); len(ms) != 0 {
		t.Fatalf("matches = %+v", ms)
	}
}

func TestEmbeddingLimit(t *testing.T) {
	// A one-Stage pattern against a wide random workflow has many
	// embeddings; the cap must hold.
	f, err := Fragment("q", []string{"Stage"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	big := workloads.RandomLayered(3, 4, 6, 2)
	ms := FindEmbeddings(f, []*workflow.Workflow{big}, Options{MaxEmbeddingsPerWorkflow: 3})
	if len(ms) != 1 || len(ms[0].Embeddings) != 3 {
		t.Fatalf("matches = %+v", ms)
	}
}

func TestRankBySimilarity(t *testing.T) {
	ranked := RankBySimilarity(workloads.MedicalImaging(), candidates())
	if len(ranked) != 5 {
		t.Fatalf("ranked = %+v", ranked)
	}
	// Identity match first with score 1.
	if ranked[0].WorkflowID != "medimg" || ranked[0].Score != 1 {
		t.Fatalf("top = %+v", ranked[0])
	}
	// The smoothed variant must outrank genomics/forecasting.
	pos := map[string]int{}
	for i, r := range ranked {
		pos[r.WorkflowID] = i
	}
	if pos["medimg-smooth"] > pos["genomics-s1"] || pos["medimg-smooth"] > pos["forecast-st1"] {
		t.Fatalf("ranking = %+v", ranked)
	}
}
