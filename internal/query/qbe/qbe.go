// Package qbe implements query-by-example over workflow specifications:
// the programmatic core of the intuitive visual query interfaces the paper
// contrasts with SQL/Prolog/SPARQL ([4] queries business processes by
// example; [34] queries workflows through the same interface used to build
// them). The user supplies a workflow *fragment* — a few connected modules —
// and the engine finds every stored workflow embedding that fragment, plus
// a similarity ranking for "find workflows like this one".
package qbe

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/workflow"
)

// Match is one workflow that embeds the query fragment.
type Match struct {
	WorkflowID string
	// Embeddings maps pattern module IDs to target module IDs, one map per
	// distinct embedding found (capped by options).
	Embeddings []map[string]string
}

// Options tunes matching.
type Options struct {
	// MaxEmbeddingsPerWorkflow caps embeddings enumerated per candidate
	// (<=0: 8). Patterns are small, targets can be large.
	MaxEmbeddingsPerWorkflow int
	// MatchParams additionally requires parameter values named in the
	// pattern to be equal in the target module.
	MatchParams bool
}

// FindEmbeddings returns every candidate workflow that structurally embeds
// the pattern fragment: an injective mapping of pattern modules to target
// modules preserving module types and connections. Results are sorted by
// workflow ID.
func FindEmbeddings(pattern *workflow.Workflow, candidates []*workflow.Workflow, opt Options) []Match {
	limit := opt.MaxEmbeddingsPerWorkflow
	if limit <= 0 {
		limit = 8
	}
	pg := pattern.Graph()
	var out []Match
	for _, cand := range candidates {
		tg := cand.Graph()
		nodeOK := func(p, t *graph.Node) bool {
			if p.Kind != t.Kind {
				return false
			}
			if !opt.MatchParams {
				return true
			}
			pm := pattern.Module(string(p.ID))
			tm := cand.Module(string(t.ID))
			if pm == nil || tm == nil {
				return false
			}
			for k, v := range pm.Params {
				if tm.Params[k] != v {
					return false
				}
			}
			return true
		}
		ms := graph.Match(pg, tg, graph.MatchOptions{NodeMatches: nodeOK, Limit: limit})
		if len(ms) == 0 {
			continue
		}
		m := Match{WorkflowID: cand.ID}
		for _, embedding := range ms {
			conv := make(map[string]string, len(embedding))
			for p, t := range embedding {
				conv[string(p)] = string(t)
			}
			m.Embeddings = append(m.Embeddings, conv)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].WorkflowID < out[j].WorkflowID })
	return out
}

// Ranked is a similarity-scored workflow.
type Ranked struct {
	WorkflowID string
	Score      float64
}

// RankBySimilarity orders candidates by structural similarity to the query
// workflow (shared module-type and connection signatures), most similar
// first; ties break by ID. This powers "find workflows suitable for a given
// task" (§2.2 knowledge re-use).
func RankBySimilarity(query *workflow.Workflow, candidates []*workflow.Workflow) []Ranked {
	qg := query.Graph()
	out := make([]Ranked, 0, len(candidates))
	for _, cand := range candidates {
		out = append(out, Ranked{
			WorkflowID: cand.ID,
			Score:      graph.Similarity(qg, cand.Graph()),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].WorkflowID < out[j].WorkflowID
	})
	return out
}

// Fragment builds a small pattern workflow from module types and typed
// connections, a convenience for expressing "module of type A feeding a
// module of type B" queries without full port declarations:
//
//	qbe.Fragment("q", []string{"Contour", "Render"}, [][2]int{{0, 1}})
//
// Modules are named q0, q1, ...; each connection adds an output port "out"
// on the source and input port "in<i>" on the destination (type "any").
func Fragment(id string, moduleTypes []string, edges [][2]int) (*workflow.Workflow, error) {
	b := workflow.NewBuilder(id, id)
	hasOut := make([]bool, len(moduleTypes))
	inPorts := make([][]string, len(moduleTypes))
	type conn struct{ src, dst, port string }
	var conns []conn
	for _, e := range edges {
		src, dst := e[0], e[1]
		if src < 0 || src >= len(moduleTypes) || dst < 0 || dst >= len(moduleTypes) {
			return nil, fmt.Errorf("qbe: edge %v out of range", e)
		}
		hasOut[src] = true
		in := fmt.Sprintf("in%d", len(inPorts[dst]))
		inPorts[dst] = append(inPorts[dst], in)
		conns = append(conns, conn{modName(src), modName(dst), in})
	}
	for i, mt := range moduleTypes {
		var ports []workflow.PortSpec
		if hasOut[i] {
			ports = append(ports, workflow.Out("out", workflow.Wildcard))
		}
		for _, in := range inPorts[i] {
			ports = append(ports, workflow.In(in, workflow.Wildcard))
		}
		b.Module(modName(i), mt, ports...)
	}
	for _, c := range conns {
		b.Connect(c.src, "out", c.dst, c.port)
	}
	return b.Build()
}

func modName(i int) string { return fmt.Sprintf("q%d", i) }
