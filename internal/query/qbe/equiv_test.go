package qbe

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/store/shardedstore"
	"repro/internal/workloads"
)

// TestFilterByClosureShardedEquivalence pins the streaming semijoin
// lineage filter to identical results over a MemStore and a 4-shard
// router holding the same runs, in both closure directions.
func TestFilterByClosureShardedEquivalence(t *testing.T) {
	col := provenance.NewCollector()
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	e := engine.New(engine.Options{Registry: reg, Recorder: col, Workers: 1, Agent: "qbe"})
	mem := store.NewMemStore()
	sharded := shardedstore.NewMem(4)
	var imageArt string
	for _, wf := range candidates()[:2] {
		res, err := e.Run(context.Background(), wf, nil)
		if err != nil {
			t.Fatal(err)
		}
		log, err := col.Log(res.RunID)
		if err != nil {
			t.Fatal(err)
		}
		if err := mem.PutRunLog(log); err != nil {
			t.Fatal(err)
		}
		if err := sharded.PutRunLog(log); err != nil {
			t.Fatal(err)
		}
		if id, ok := res.Artifacts["render.image"]; ok && imageArt == "" {
			imageArt = id
		}
	}
	if imageArt == "" {
		t.Fatal("no image artifact recorded")
	}
	f, err := Fragment("q", []string{"Contour", "Render"}, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ms := FindEmbeddings(f, candidates(), Options{})
	if len(ms) == 0 {
		t.Fatal("no structural matches")
	}
	for _, dir := range []store.Direction{store.Up, store.Down} {
		want, err := FilterByClosure(mem, ms, imageArt, dir)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FilterByClosure(sharded, ms, imageArt, dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("dir %v: %d matches vs %d", dir, len(got), len(want))
		}
		for i := range want {
			if want[i].WorkflowID != got[i].WorkflowID {
				t.Fatalf("dir %v: match %d: %s vs %s", dir, i, got[i].WorkflowID, want[i].WorkflowID)
			}
		}
	}
}
