package qbe

import (
	"sort"

	"repro/internal/provenance"
	"repro/internal/query/scan"
	"repro/internal/relalg"
	"repro/internal/store"
)

// FilterByClosure narrows QBE matches using stored provenance: it keeps
// only the workflows with at least one stored run whose executions or
// artifacts appear in the closure of entityID (the entity itself counts).
// With dir store.Up this answers "which of these structurally similar
// workflows contributed to this result"; with store.Down, "which consumed
// it" — the §2.2 knowledge-reuse queries joined with retrospective
// provenance. The closure is pushed down to the backend as one batch
// traversal; the run-log pass streams (workflow, entity) pairs through a
// relalg semijoin against the closure set, with the leaf scan fanned out
// across shards in parallel on a sharded store.
func FilterByClosure(s store.Store, matches []Match, entityID string, dir store.Direction) ([]Match, error) {
	closure, err := s.Closure(entityID, dir)
	if err != nil {
		return nil, err
	}
	keys := make(map[relalg.Val]bool, len(closure)+1)
	keys[entityID] = true
	for _, id := range closure {
		keys[id] = true
	}

	var pairs []relalg.Tuple
	if _, err := scan.ShardedLogs(s, func(l *provenance.RunLog) error {
		wf := l.Run.WorkflowID
		for _, e := range l.Executions {
			pairs = append(pairs, relalg.Tuple{Values: []relalg.Val{wf, e.ID}})
		}
		for _, a := range l.Artifacts {
			pairs = append(pairs, relalg.Tuple{Values: []relalg.Val{wf, a.ID}})
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// touch ⋉ closure, projected to the distinct workflows touched.
	it, err := relalg.StreamSemijoin(
		relalg.NewSliceScan("touch", []string{"workflow", "entity"}, pairs),
		"entity", keys)
	if err != nil {
		return nil, err
	}
	it, err = relalg.StreamProject(it, "workflow")
	if err != nil {
		return nil, err
	}
	touched := map[string]bool{}
	if err := relalg.Drain(it, func(t *relalg.Tuple) error {
		touched[t.Values[0].(string)] = true
		return nil
	}); err != nil {
		return nil, err
	}

	var out []Match
	for _, m := range matches {
		if touched[m.WorkflowID] {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].WorkflowID < out[j].WorkflowID })
	return out, nil
}
