package qbe

import (
	"sort"

	"repro/internal/store"
)

// FilterByClosure narrows QBE matches using stored provenance: it keeps
// only the workflows with at least one stored run whose executions or
// artifacts appear in the closure of entityID (the entity itself counts).
// With dir store.Up this answers "which of these structurally similar
// workflows contributed to this result"; with store.Down, "which consumed
// it" — the §2.2 knowledge-reuse queries joined with retrospective
// provenance. The closure is pushed down to the backend as one batch
// traversal, so the filter costs O(hops) store calls plus one run-log scan,
// not O(edges).
func FilterByClosure(s store.Store, matches []Match, entityID string, dir store.Direction) ([]Match, error) {
	closure, err := s.Closure(entityID, dir)
	if err != nil {
		return nil, err
	}
	inClosure := make(map[string]bool, len(closure)+1)
	inClosure[entityID] = true
	for _, id := range closure {
		inClosure[id] = true
	}
	runs, err := s.Runs()
	if err != nil {
		return nil, err
	}
	touched := map[string]bool{} // workflow ID -> some run intersects the closure
	for _, runID := range runs {
		l, err := s.RunLog(runID)
		if err != nil {
			return nil, err
		}
		hit := false
		for _, e := range l.Executions {
			if inClosure[e.ID] {
				hit = true
				break
			}
		}
		if !hit {
			for _, a := range l.Artifacts {
				if inClosure[a.ID] {
					hit = true
					break
				}
			}
		}
		if hit {
			touched[l.Run.WorkflowID] = true
		}
	}
	var out []Match
	for _, m := range matches {
		if touched[m.WorkflowID] {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].WorkflowID < out[j].WorkflowID })
	return out, nil
}
