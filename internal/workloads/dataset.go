// Package workloads provides the motivating applications of §2.1 as
// executable workloads: medical imaging (Figure 1), genomics, and
// environmental observatories/forecasting — plus random layered workflows
// for scaling experiments.
//
// The paper's datasets (CT scans such as head.120.vtk, sequencing reads,
// sensor feeds) are proprietary or unavailable; each generator below
// synthesizes a deterministic stand-in with the same shape, so the dataflow
// and provenance structure exercised is identical (see DESIGN.md,
// substitution 1).
package workloads

import (
	"fmt"
	"math"
	"math/rand"
)

// StructuredGrid is a regular 3-D scalar field: the stand-in for a VTK
// structured-grid dataset like Figure 1's head.120.vtk.
type StructuredGrid struct {
	Dims    [3]int    `json:"dims"`
	Scalars []float64 `json:"scalars"`
}

// At returns the scalar at integer coordinates.
func (g *StructuredGrid) At(x, y, z int) float64 {
	return g.Scalars[(z*g.Dims[1]+y)*g.Dims[0]+x]
}

// MinMax returns the scalar range.
func (g *StructuredGrid) MinMax() (lo, hi float64) {
	if len(g.Scalars) == 0 {
		return 0, 0
	}
	lo, hi = g.Scalars[0], g.Scalars[0]
	for _, v := range g.Scalars {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// SynthesizeHead generates a deterministic head-like CT volume: a dense
// sphere (skull) containing a softer sphere (tissue) with low-amplitude
// noise. The same (name, dims) always produces identical scalars, so
// artifact content hashes are reproducible across runs and machines.
func SynthesizeHead(name string, dim int) *StructuredGrid {
	seed := int64(0)
	for _, c := range name {
		seed = seed*131 + int64(c)
	}
	r := rand.New(rand.NewSource(seed))
	g := &StructuredGrid{Dims: [3]int{dim, dim, dim}, Scalars: make([]float64, dim*dim*dim)}
	c := float64(dim-1) / 2
	rSkull := c * 0.9
	rTissue := c * 0.7
	i := 0
	for z := 0; z < dim; z++ {
		for y := 0; y < dim; y++ {
			for x := 0; x < dim; x++ {
				dx, dy, dz := float64(x)-c, float64(y)-c, float64(z)-c
				d := math.Sqrt(dx*dx + dy*dy + dz*dz)
				v := 0.0
				switch {
				case d < rTissue:
					v = 40 + 10*math.Sin(d/3)
				case d < rSkull:
					v = 100 + 20*math.Cos(d/2)
				}
				v += r.Float64() * 2
				g.Scalars[i] = math.Round(v*100) / 100
				i++
			}
		}
	}
	return g
}

// Mesh is the pseudo-isosurface produced by Contour: enough geometry
// summary for rendering and smoothing to be meaningful computations.
type Mesh struct {
	Isovalue  float64   `json:"isovalue"`
	CellCount int       `json:"cellCount"`
	Verts     []float64 `json:"verts"` // packed x,y,z triples
}

// Sequence is a synthetic DNA read set for the genomics workload.
type Sequence struct {
	Name  string   `json:"name"`
	Reads []string `json:"reads"`
}

// SynthesizeReads generates deterministic pseudo-reads: substrings of a
// seeded reference with point mutations at a fixed rate.
func SynthesizeReads(name string, n, length int, mutRate float64) *Sequence {
	seed := int64(7)
	for _, c := range name {
		seed = seed*151 + int64(c)
	}
	r := rand.New(rand.NewSource(seed))
	ref := randomBases(r, length*4)
	reads := make([]string, n)
	for i := range reads {
		start := r.Intn(len(ref) - length)
		read := []byte(ref[start : start+length])
		for j := range read {
			if r.Float64() < mutRate {
				read[j] = bases[r.Intn(4)]
			}
		}
		reads[i] = string(read)
	}
	return &Sequence{Name: name, Reads: reads}
}

const bases = "ACGT"

// intner is the slice of rand.Rand the base generator needs; the Align
// module supplies its own xorshift source to stay independent of math/rand.
type intner interface{ Intn(n int) int }

func randomBases(r intner, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = bases[r.Intn(4)]
	}
	return string(b)
}

// TimeSeries is a synthetic sensor feed for the environmental-observatory
// workload: hourly samples with diurnal cycle, drift, and spikes.
type TimeSeries struct {
	Station string    `json:"station"`
	Values  []float64 `json:"values"`
}

// SynthesizeSensor generates a deterministic sensor series of n samples.
func SynthesizeSensor(station string, n int) *TimeSeries {
	seed := int64(3)
	for _, c := range station {
		seed = seed*137 + int64(c)
	}
	r := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		diurnal := 10 * math.Sin(2*math.Pi*float64(i%24)/24)
		drift := 0.01 * float64(i)
		noise := r.NormFloat64()
		v[i] = 20 + diurnal + drift + noise
		if r.Float64() < 0.01 { // sensor spike
			v[i] += 80
		}
		v[i] = math.Round(v[i]*1000) / 1000
	}
	return &TimeSeries{Station: station, Values: v}
}

// Histogram bins values into nbins equal-width buckets over [lo, hi].
type Histogram struct {
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Counts []int   `json:"counts"`
}

// BinValues computes a histogram of values.
func BinValues(values []float64, nbins int) *Histogram {
	if nbins <= 0 {
		nbins = 10
	}
	h := &Histogram{Counts: make([]int, nbins)}
	if len(values) == 0 {
		return h
	}
	h.Lo, h.Hi = values[0], values[0]
	for _, v := range values {
		if v < h.Lo {
			h.Lo = v
		}
		if v > h.Hi {
			h.Hi = v
		}
	}
	span := h.Hi - h.Lo
	if span == 0 {
		h.Counts[0] = len(values)
		return h
	}
	for _, v := range values {
		b := int((v - h.Lo) / span * float64(nbins))
		if b >= nbins {
			b = nbins - 1
		}
		h.Counts[b]++
	}
	return h
}

// Render returns an ASCII bar rendering of the histogram: the "image" data
// product of Figure 1's left branch.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxc := 0
	for _, c := range h.Counts {
		if c > maxc {
			maxc = c
		}
	}
	out := ""
	for i, c := range h.Counts {
		bar := 0
		if maxc > 0 {
			bar = c * width / maxc
		}
		out += fmt.Sprintf("%3d |", i)
		for j := 0; j < bar; j++ {
			out += "#"
		}
		out += fmt.Sprintf(" %d\n", c)
	}
	return out
}
