package workloads

import (
	"context"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/provenance"
)

func newEngine(rec provenance.Recorder) *engine.Engine {
	r := engine.NewRegistry()
	RegisterAll(r)
	return engine.New(engine.Options{Registry: r, Recorder: rec})
}

func TestSynthesizeHeadDeterministic(t *testing.T) {
	a := SynthesizeHead("head.120.vtk", 8)
	b := SynthesizeHead("head.120.vtk", 8)
	c := SynthesizeHead("other.vtk", 8)
	if len(a.Scalars) != 512 {
		t.Fatalf("scalars = %d", len(a.Scalars))
	}
	for i := range a.Scalars {
		if a.Scalars[i] != b.Scalars[i] {
			t.Fatal("same name produced different volumes")
		}
	}
	same := true
	for i := range a.Scalars {
		if a.Scalars[i] != c.Scalars[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different names produced identical volumes")
	}
	lo, hi := a.MinMax()
	if lo < 0 || hi < 50 {
		t.Fatalf("implausible range [%v, %v]", lo, hi)
	}
}

func TestBinValues(t *testing.T) {
	h := BinValues([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram lost values: %v", h.Counts)
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Fatalf("bin %d = %d, want 2", i, c)
		}
	}
	// Degenerate cases.
	empty := BinValues(nil, 4)
	if len(empty.Counts) != 4 {
		t.Fatal("empty histogram wrong size")
	}
	flat := BinValues([]float64{5, 5, 5}, 4)
	if flat.Counts[0] != 3 {
		t.Fatalf("constant series: %v", flat.Counts)
	}
}

func TestHistogramRender(t *testing.T) {
	h := BinValues([]float64{1, 1, 1, 2}, 2)
	img := h.Render(10)
	if !strings.Contains(img, "#") || !strings.Contains(img, "3") {
		t.Fatalf("render:\n%s", img)
	}
}

// Property: histogram conserves count for arbitrary inputs.
func TestQuickHistogramConservesMass(t *testing.T) {
	f := func(vals []float64, nb uint8) bool {
		finite := vals[:0]
		for _, v := range vals {
			if v == v && v < 1e18 && v > -1e18 { // drop NaN/±huge
				finite = append(finite, v)
			}
		}
		h := BinValues(finite, int(nb%16)+1)
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == len(finite)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMedicalImagingRunsAndCaptures(t *testing.T) {
	col := provenance.NewCollector()
	e := newEngine(col)
	wf := MedicalImaging()
	res, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != provenance.StatusOK {
		t.Fatalf("status = %s (failed=%v)", res.Status, res.Failed)
	}
	img, err := res.Output("render", "image")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(img.Data.(string), "\n") {
		t.Fatal("render produced no image rows")
	}
	plot, _ := res.Output("histogram", "plot")
	if !strings.Contains(plot.Data.(string), "|") {
		t.Fatal("histogram produced no bars")
	}
	log, _ := col.Log(res.RunID)
	if err := log.Validate(); err != nil {
		t.Fatal(err)
	}
	// Figure 1 structure: both final products trace back to the same grid.
	cg, err := provenance.BuildCausalGraph(log)
	if err != nil {
		t.Fatal(err)
	}
	shared := cg.DerivedFromSameRawData(res.Artifacts["render.image"], res.Artifacts["histogram.plot"])
	if len(shared) != 0 {
		// No external raw inputs here (reader synthesizes), so shared raw
		// ancestors are the reader's output grid only if it is a source
		// artifact; it is generated, so expect none shared at raw level.
		t.Fatalf("unexpected shared raw inputs: %v", shared)
	}
	// But both lineages must include the same grid artifact.
	gridArt := res.Artifacts["reader.data"]
	inImage := false
	for _, id := range cg.Lineage(res.Artifacts["render.image"]) {
		if id == gridArt {
			inImage = true
		}
	}
	inPlot := false
	for _, id := range cg.Lineage(res.Artifacts["histogram.plot"]) {
		if id == gridArt {
			inPlot = true
		}
	}
	if !inImage || !inPlot {
		t.Fatal("grid artifact missing from a branch lineage")
	}
}

func TestContourIsovalueChangesOutput(t *testing.T) {
	e := newEngine(nil)
	wf := MedicalImaging()
	res1, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	wf2 := wf.Clone()
	if err := wf2.SetParam("contour", "isovalue", "110"); err != nil {
		t.Fatal(err)
	}
	res2, err := e.Run(context.Background(), wf2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := res1.Output("contour", "surface")
	s2, _ := res2.Output("contour", "surface")
	if s1.Hash() == s2.Hash() {
		t.Fatal("isovalue change produced identical surfaces")
	}
	// Histogram branch is unaffected.
	h1, _ := res1.Output("histogram", "plot")
	h2, _ := res2.Output("histogram", "plot")
	if h1.Hash() != h2.Hash() {
		t.Fatal("histogram changed although its inputs did not")
	}
}

func TestSmoothedImagingRuns(t *testing.T) {
	e := newEngine(nil)
	res, err := e.Run(context.Background(), SmoothedImaging(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != provenance.StatusOK {
		t.Fatalf("status = %s", res.Status)
	}
	// Smoothing must change the surface.
	plain, err := e.Run(context.Background(), MedicalImaging(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := res.Output("smooth", "surface")
	b, _ := plain.Output("contour", "surface")
	if a.Hash() == b.Hash() {
		t.Fatal("smooth is identity")
	}
}

func TestGenomicsPipeline(t *testing.T) {
	col := provenance.NewCollector()
	e := newEngine(col)
	res, err := e.Run(context.Background(), Genomics("sample-42"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != provenance.StatusOK {
		t.Fatalf("status = %s failed=%v", res.Status, res.Failed)
	}
	rep, err := res.Output("report", "report")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rep.Data.(string), "report:") {
		t.Fatalf("report = %q", rep.Data)
	}
	log, _ := col.Log(res.RunID)
	if len(log.Executions) != 5 {
		t.Fatalf("executions = %d", len(log.Executions))
	}
}

func TestForecastingPipeline(t *testing.T) {
	e := newEngine(nil)
	res, err := e.Run(context.Background(), Forecasting("station-A"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != provenance.StatusOK {
		t.Fatalf("status = %s failed=%v", res.Status, res.Failed)
	}
	fc, _ := res.Output("forecast", "series")
	ts := fc.Data.(*TimeSeries)
	if len(ts.Values) != 24 {
		t.Fatalf("forecast horizon = %d", len(ts.Values))
	}
}

func TestSensorCleanRemovesSpikes(t *testing.T) {
	ts := SynthesizeSensor("station-A", 500)
	mean, sd := meanStd(ts.Values)
	spikes := 0
	for _, v := range ts.Values {
		if v > mean+3*sd {
			spikes++
		}
	}
	if spikes == 0 {
		t.Skip("no spikes generated at this seed; adjust synth rate")
	}
	e := newEngine(nil)
	res, err := e.Run(context.Background(), Forecasting("station-A"), nil)
	if err != nil {
		t.Fatal(err)
	}
	cleaned, _ := res.Output("clean", "series")
	cm, csd := meanStd(cleaned.Data.(*TimeSeries).Values)
	if csd >= sd {
		t.Fatalf("cleaning did not reduce variance: %.3f -> %.3f (mean %.3f -> %.3f)", sd, csd, mean, cm)
	}
}

func TestRandomLayeredShape(t *testing.T) {
	wf := RandomLayered(1, 4, 5, 2)
	if err := wf.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(wf.Modules) != 20 {
		t.Fatalf("modules = %d, want 20", len(wf.Modules))
	}
	if len(wf.Connections) != 3*5*2 {
		t.Fatalf("connections = %d, want 30", len(wf.Connections))
	}
	// Determinism.
	if RandomLayered(1, 4, 5, 2).ContentHash() != wf.ContentHash() {
		t.Fatal("same seed produced different workflow")
	}
	if RandomLayered(2, 4, 5, 2).ContentHash() == wf.ContentHash() {
		t.Fatal("different seeds produced identical workflow")
	}
}

func TestRandomLayeredRuns(t *testing.T) {
	e := newEngine(nil)
	res, err := e.Run(context.Background(), RandomLayered(7, 5, 4, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != provenance.StatusOK {
		t.Fatalf("status = %s failed=%v", res.Status, res.Failed)
	}
}

func TestChainRuns(t *testing.T) {
	e := newEngine(nil)
	wf := Chain(10)
	if len(wf.Modules) != 10 || len(wf.Connections) != 9 {
		t.Fatalf("chain shape %d/%d", len(wf.Modules), len(wf.Connections))
	}
	res, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != provenance.StatusOK {
		t.Fatal("chain failed")
	}
}

func TestFigure2Workflows(t *testing.T) {
	e := newEngine(nil)
	for _, wf := range []struct {
		name string
		w    interface {
			Validate() error
		}
	}{
		{"download", DownloadAndRender()},
		{"download-smoothed", DownloadAndRenderSmoothed()},
	} {
		if err := wf.w.Validate(); err != nil {
			t.Fatalf("%s: %v", wf.name, err)
		}
	}
	res, err := e.Run(context.Background(), DownloadAndRenderSmoothed(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != provenance.StatusOK {
		t.Fatalf("status = %s failed=%v", res.Status, res.Failed)
	}
}

func TestSequenceSynthesisDeterministic(t *testing.T) {
	a := SynthesizeReads("s", 10, 20, 0.1)
	b := SynthesizeReads("s", 10, 20, 0.1)
	if len(a.Reads) != 10 || a.Reads[0] != b.Reads[0] {
		t.Fatal("reads not deterministic")
	}
	for _, r := range a.Reads {
		if len(r) != 20 {
			t.Fatalf("read length %d", len(r))
		}
	}
}
