package workloads

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/engine"
)

// Data type tags used by the workload modules.
const (
	TypeGrid   = "grid"
	TypeMesh   = "mesh"
	TypeImage  = "image"
	TypeHist   = "histogram"
	TypeSeq    = "sequence"
	TypeAlign  = "alignment"
	TypeTable  = "table"
	TypeSeries = "timeseries"
	TypeData   = "data" // generic payload for random workflows
)

// RegisterAll registers every workload module implementation on the
// registry. Module type names match the workflow builders in pipelines.go.
func RegisterAll(r *engine.Registry) {
	registerImaging(r)
	registerGenomics(r)
	registerForecast(r)
	registerGeneric(r)
}

// --- Medical imaging (Figure 1) -----------------------------------------

func registerImaging(r *engine.Registry) {
	// FileReader simulates loading a VTK structured grid named by the
	// "file" parameter; "dim" sets resolution.
	r.Register("FileReader", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		file := ec.Param("file", "head.120.vtk")
		dim, err := strconv.Atoi(ec.Param("dim", "24"))
		if err != nil || dim < 2 {
			return nil, fmt.Errorf("FileReader: bad dim %q", ec.Param("dim", ""))
		}
		grid := SynthesizeHead(file, dim)
		return map[string]engine.Value{"data": {Type: TypeGrid, Data: grid}}, nil
	})

	// Histogram bins the scalar values of a grid ("bins" parameter).
	r.Register("Histogram", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		in, err := ec.Input("data")
		if err != nil {
			return nil, err
		}
		grid, ok := in.Data.(*StructuredGrid)
		if !ok {
			return nil, fmt.Errorf("Histogram: input is %T, want *StructuredGrid", in.Data)
		}
		bins, _ := strconv.Atoi(ec.Param("bins", "16"))
		h := BinValues(grid.Scalars, bins)
		return map[string]engine.Value{"plot": {Type: TypeImage, Data: h.Render(40)},
			"hist": {Type: TypeHist, Data: h}}, nil
	})

	// Contour extracts a pseudo-isosurface at "isovalue": it counts cells
	// straddling the isovalue and emits one vertex per crossing cell
	// centroid (a marching-cubes stand-in with the same data dependence).
	r.Register("Contour", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		in, err := ec.Input("data")
		if err != nil {
			return nil, err
		}
		grid, ok := in.Data.(*StructuredGrid)
		if !ok {
			return nil, fmt.Errorf("Contour: input is %T, want *StructuredGrid", in.Data)
		}
		iso, err := strconv.ParseFloat(ec.Param("isovalue", "57"), 64)
		if err != nil {
			return nil, fmt.Errorf("Contour: bad isovalue: %w", err)
		}
		mesh := contour(grid, iso)
		return map[string]engine.Value{"surface": {Type: TypeMesh, Data: mesh}}, nil
	})

	// Smooth applies iterative vertex averaging to a mesh ("iterations").
	r.Register("Smooth", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		in, err := ec.Input("surface")
		if err != nil {
			return nil, err
		}
		mesh, ok := in.Data.(*Mesh)
		if !ok {
			return nil, fmt.Errorf("Smooth: input is %T, want *Mesh", in.Data)
		}
		iters, _ := strconv.Atoi(ec.Param("iterations", "2"))
		out := smoothMesh(mesh, iters)
		return map[string]engine.Value{"surface": {Type: TypeMesh, Data: out}}, nil
	})

	// Render turns a mesh into an ASCII depth image.
	r.Register("Render", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		in, err := ec.Input("surface")
		if err != nil {
			return nil, err
		}
		mesh, ok := in.Data.(*Mesh)
		if !ok {
			return nil, fmt.Errorf("Render: input is %T, want *Mesh", in.Data)
		}
		img := renderMesh(mesh, 24, 12)
		return map[string]engine.Value{"image": {Type: TypeImage, Data: img}}, nil
	})

	// Download simulates fetching a remote file (the Figure 2 example
	// downloads a file from the Web); output is deterministic in "url".
	r.Register("Download", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		url := ec.Param("url", "")
		if url == "" {
			return nil, fmt.Errorf("Download: url parameter required")
		}
		dim, _ := strconv.Atoi(ec.Param("dim", "16"))
		grid := SynthesizeHead(url, dim)
		return map[string]engine.Value{"data": {Type: TypeGrid, Data: grid}}, nil
	})
}

func contour(g *StructuredGrid, iso float64) *Mesh {
	m := &Mesh{Isovalue: iso}
	nx, ny, nz := g.Dims[0], g.Dims[1], g.Dims[2]
	for z := 0; z+1 < nz; z++ {
		for y := 0; y+1 < ny; y++ {
			for x := 0; x+1 < nx; x++ {
				lo, hi := math.Inf(1), math.Inf(-1)
				for dz := 0; dz < 2; dz++ {
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							v := g.At(x+dx, y+dy, z+dz)
							if v < lo {
								lo = v
							}
							if v > hi {
								hi = v
							}
						}
					}
				}
				if lo <= iso && iso <= hi {
					m.CellCount++
					m.Verts = append(m.Verts, float64(x)+0.5, float64(y)+0.5, float64(z)+0.5)
				}
			}
		}
	}
	return m
}

func smoothMesh(m *Mesh, iters int) *Mesh {
	out := &Mesh{Isovalue: m.Isovalue, CellCount: m.CellCount, Verts: append([]float64(nil), m.Verts...)}
	n := len(out.Verts) / 3
	if n < 3 {
		return out
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, len(out.Verts))
		for i := 0; i < n; i++ {
			prev := (i - 1 + n) % n
			nxt := (i + 1) % n
			for c := 0; c < 3; c++ {
				next[i*3+c] = math.Round((out.Verts[prev*3+c]+out.Verts[i*3+c]+out.Verts[nxt*3+c])/3*1000) / 1000
			}
		}
		out.Verts = next
	}
	return out
}

func renderMesh(m *Mesh, w, h int) string {
	depth := make([]float64, w*h)
	count := make([]int, w*h)
	n := len(m.Verts) / 3
	var maxX, maxY float64 = 1, 1
	for i := 0; i < n; i++ {
		if m.Verts[i*3] > maxX {
			maxX = m.Verts[i*3]
		}
		if m.Verts[i*3+1] > maxY {
			maxY = m.Verts[i*3+1]
		}
	}
	for i := 0; i < n; i++ {
		x := int(m.Verts[i*3] / (maxX + 1) * float64(w))
		y := int(m.Verts[i*3+1] / (maxY + 1) * float64(h))
		if x >= 0 && x < w && y >= 0 && y < h {
			depth[y*w+x] += m.Verts[i*3+2]
			count[y*w+x]++
		}
	}
	shades := " .:-=+*#%@"
	maxd := 1.0
	for i := range depth {
		if count[i] > 0 {
			depth[i] /= float64(count[i])
			if depth[i] > maxd {
				maxd = depth[i]
			}
		}
	}
	var b strings.Builder
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if count[i] == 0 {
				b.WriteByte(' ')
			} else {
				s := int(depth[i] / maxd * float64(len(shades)-1))
				b.WriteByte(shades[s])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// --- Genomics -------------------------------------------------------------

func registerGenomics(r *engine.Registry) {
	// SequenceGen emits synthetic reads ("sample", "reads", "length").
	r.Register("SequenceGen", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		n, _ := strconv.Atoi(ec.Param("reads", "100"))
		length, _ := strconv.Atoi(ec.Param("length", "50"))
		mut, _ := strconv.ParseFloat(ec.Param("mutRate", "0.01"), 64)
		seq := SynthesizeReads(ec.Param("sample", "sample-1"), n, length, mut)
		return map[string]engine.Value{"reads": {Type: TypeSeq, Data: seq}}, nil
	})

	// Trim drops low-complexity read ends ("minLen" filters short reads).
	r.Register("Trim", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		in, err := ec.Input("reads")
		if err != nil {
			return nil, err
		}
		seq, ok := in.Data.(*Sequence)
		if !ok {
			return nil, fmt.Errorf("Trim: input is %T, want *Sequence", in.Data)
		}
		minLen, _ := strconv.Atoi(ec.Param("minLen", "30"))
		out := &Sequence{Name: seq.Name + ".trimmed"}
		for _, read := range seq.Reads {
			trimmed := strings.TrimRight(strings.TrimLeft(read, "A"), "A")
			if len(trimmed) >= minLen {
				out.Reads = append(out.Reads, trimmed)
			}
		}
		return map[string]engine.Value{"reads": {Type: TypeSeq, Data: out}}, nil
	})

	// Align scores each read against a seeded reference (k-mer counting, a
	// cheap stand-in for alignment with the same data dependence).
	r.Register("Align", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		in, err := ec.Input("reads")
		if err != nil {
			return nil, err
		}
		seq, ok := in.Data.(*Sequence)
		if !ok {
			return nil, fmt.Errorf("Align: input is %T, want *Sequence", in.Data)
		}
		k, _ := strconv.Atoi(ec.Param("k", "8"))
		refIndex := map[string]bool{}
		ref := randomBases(newSeededRand(ec.Param("reference", "GRCh-sim")), 4096)
		for i := 0; i+k <= len(ref); i++ {
			refIndex[ref[i:i+k]] = true
		}
		scores := make([]float64, len(seq.Reads))
		for i, read := range seq.Reads {
			hitCount, total := 0, 0
			for j := 0; j+k <= len(read); j++ {
				total++
				if refIndex[read[j:j+k]] {
					hitCount++
				}
			}
			if total > 0 {
				scores[i] = math.Round(float64(hitCount)/float64(total)*1000) / 1000
			}
		}
		return map[string]engine.Value{"scores": {Type: TypeAlign, Data: scores}}, nil
	})

	// VariantCall thresholds alignment scores ("minScore") into a table of
	// candidate variant reads.
	r.Register("VariantCall", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		in, err := ec.Input("scores")
		if err != nil {
			return nil, err
		}
		scores, ok := in.Data.([]float64)
		if !ok {
			return nil, fmt.Errorf("VariantCall: input is %T, want []float64", in.Data)
		}
		min, _ := strconv.ParseFloat(ec.Param("minScore", "0.5"), 64)
		var rows []string
		for i, s := range scores {
			if s < min {
				rows = append(rows, fmt.Sprintf("read%04d score=%.3f", i, s))
			}
		}
		return map[string]engine.Value{"variants": {Type: TypeTable, Data: rows}}, nil
	})

	// Report formats a table into a textual report.
	r.Register("Report", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		in, err := ec.Input("rows")
		if err != nil {
			return nil, err
		}
		rows, ok := in.Data.([]string)
		if !ok {
			return nil, fmt.Errorf("Report: input is %T, want []string", in.Data)
		}
		report := fmt.Sprintf("report: %d entries\n%s", len(rows), strings.Join(rows, "\n"))
		return map[string]engine.Value{"report": {Type: TypeImage, Data: report}}, nil
	})
}

func newSeededRand(name string) *seededRand {
	seed := int64(11)
	for _, c := range name {
		seed = seed*149 + int64(c)
	}
	return &seededRand{state: uint64(seed)}
}

// seededRand is a tiny xorshift generator exposing the one method
// randomBases needs, so Align does not perturb math/rand global state.
type seededRand struct{ state uint64 }

func (s *seededRand) Intn(n int) int {
	s.state ^= s.state << 13
	s.state ^= s.state >> 7
	s.state ^= s.state << 17
	return int(s.state % uint64(n))
}

// --- Environmental forecasting -------------------------------------------

func registerForecast(r *engine.Registry) {
	// SensorGen emits a synthetic station series ("station", "samples").
	r.Register("SensorGen", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		n, _ := strconv.Atoi(ec.Param("samples", "240"))
		ts := SynthesizeSensor(ec.Param("station", "station-A"), n)
		return map[string]engine.Value{"series": {Type: TypeSeries, Data: ts}}, nil
	})

	// Clean removes spikes beyond "sigma" standard deviations.
	r.Register("Clean", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		in, err := ec.Input("series")
		if err != nil {
			return nil, err
		}
		ts, ok := in.Data.(*TimeSeries)
		if !ok {
			return nil, fmt.Errorf("Clean: input is %T, want *TimeSeries", in.Data)
		}
		sigma, _ := strconv.ParseFloat(ec.Param("sigma", "3"), 64)
		mean, sd := meanStd(ts.Values)
		out := &TimeSeries{Station: ts.Station + ".clean"}
		for _, v := range ts.Values {
			if math.Abs(v-mean) <= sigma*sd {
				out.Values = append(out.Values, v)
			} else {
				out.Values = append(out.Values, mean) // impute
			}
		}
		return map[string]engine.Value{"series": {Type: TypeSeries, Data: out}}, nil
	})

	// MovingAverage smooths with window "window".
	r.Register("MovingAverage", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		in, err := ec.Input("series")
		if err != nil {
			return nil, err
		}
		ts, ok := in.Data.(*TimeSeries)
		if !ok {
			return nil, fmt.Errorf("MovingAverage: input is %T, want *TimeSeries", in.Data)
		}
		w, _ := strconv.Atoi(ec.Param("window", "5"))
		if w < 1 {
			w = 1
		}
		out := &TimeSeries{Station: ts.Station + ".ma"}
		for i := range ts.Values {
			lo := i - w + 1
			if lo < 0 {
				lo = 0
			}
			sum := 0.0
			for j := lo; j <= i; j++ {
				sum += ts.Values[j]
			}
			out.Values = append(out.Values, math.Round(sum/float64(i-lo+1)*1000)/1000)
		}
		return map[string]engine.Value{"series": {Type: TypeSeries, Data: out}}, nil
	})

	// Forecast extrapolates "horizon" steps with a damped trend.
	r.Register("Forecast", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		in, err := ec.Input("series")
		if err != nil {
			return nil, err
		}
		ts, ok := in.Data.(*TimeSeries)
		if !ok {
			return nil, fmt.Errorf("Forecast: input is %T, want *TimeSeries", in.Data)
		}
		h, _ := strconv.Atoi(ec.Param("horizon", "24"))
		out := &TimeSeries{Station: ts.Station + ".forecast"}
		n := len(ts.Values)
		if n < 2 {
			return nil, fmt.Errorf("Forecast: series too short (%d)", n)
		}
		trend := (ts.Values[n-1] - ts.Values[0]) / float64(n-1)
		last := ts.Values[n-1]
		for i := 1; i <= h; i++ {
			last += trend * math.Pow(0.95, float64(i))
			out.Values = append(out.Values, math.Round(last*1000)/1000)
		}
		return map[string]engine.Value{"series": {Type: TypeSeries, Data: out}}, nil
	})

	// Alert emits threshold crossings ("threshold").
	r.Register("Alert", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		in, err := ec.Input("series")
		if err != nil {
			return nil, err
		}
		ts, ok := in.Data.(*TimeSeries)
		if !ok {
			return nil, fmt.Errorf("Alert: input is %T, want *TimeSeries", in.Data)
		}
		th, _ := strconv.ParseFloat(ec.Param("threshold", "30"), 64)
		var alerts []string
		for i, v := range ts.Values {
			if v > th {
				alerts = append(alerts, fmt.Sprintf("t+%d: %.3f > %.1f", i, v, th))
			}
		}
		return map[string]engine.Value{"alerts": {Type: TypeTable, Data: alerts}}, nil
	})
}

func meanStd(v []float64) (mean, sd float64) {
	if len(v) == 0 {
		return 0, 0
	}
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for _, x := range v {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(v)))
	return mean, sd
}

// --- Generic stages for random workflows ----------------------------------

func registerGeneric(r *engine.Registry) {
	// Source emits a deterministic payload derived from "seed".
	r.Register("Source", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		return map[string]engine.Value{"out": {Type: TypeData, Data: "payload:" + ec.Param("seed", "0")}}, nil
	})

	// Stage hashes all inputs together "work" times: a CPU-burning generic
	// transformation whose output depends on every input.
	r.Register("Stage", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		work, _ := strconv.Atoi(ec.Param("work", "1"))
		ports := make([]string, 0, len(ec.Inputs))
		for p := range ec.Inputs {
			ports = append(ports, p)
		}
		sort.Strings(ports)
		h := fnv.New64a()
		for _, p := range ports {
			fmt.Fprintf(h, "%s=%s;", p, ec.Inputs[p].Hash())
		}
		sum := h.Sum64()
		for i := 0; i < work*1000; i++ {
			sum = sum*6364136223846793005 + 1442695040888963407
		}
		return map[string]engine.Value{"out": {Type: TypeData, Data: strconv.FormatUint(sum, 16)}}, nil
	})
}
