package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/workflow"
)

// MedicalImaging builds the workflow of Figure 1: a structured-grid dataset
// fans out to (a) a histogram of its scalar values and (b) an isosurface
// visualization. Annotations mirror the user-defined provenance shown in
// the figure's yellow boxes.
func MedicalImaging() *workflow.Workflow {
	wf := workflow.NewBuilder("medimg", "medical-imaging-fig1").
		Module("reader", "FileReader", workflow.Out("data", TypeGrid)).
		Module("histogram", "Histogram", workflow.In("data", TypeGrid),
			workflow.Out("plot", TypeImage), workflow.Out("hist", TypeHist)).
		Module("contour", "Contour", workflow.In("data", TypeGrid), workflow.Out("surface", TypeMesh)).
		Module("render", "Render", workflow.In("surface", TypeMesh), workflow.Out("image", TypeImage)).
		Param("reader", "file", "head.120.vtk").
		Param("reader", "dim", "24").
		Param("contour", "isovalue", "57").
		Annotate("contour", "note", "isovalue 57 isolates bone in this scan").
		Connect("reader", "data", "histogram", "data").
		Connect("reader", "data", "contour", "data").
		Connect("contour", "surface", "render", "surface").
		MustBuild()
	wf.Annotate("purpose", "reproduces Figure 1: histogram + isosurface of a CT volume")
	return wf
}

// SmoothedImaging is the Figure 2 "after" workflow: MedicalImaging with a
// Smooth module inserted between Contour and Render.
func SmoothedImaging() *workflow.Workflow {
	wf := workflow.NewBuilder("medimg-smooth", "medical-imaging-smoothed").
		Module("reader", "FileReader", workflow.Out("data", TypeGrid)).
		Module("histogram", "Histogram", workflow.In("data", TypeGrid),
			workflow.Out("plot", TypeImage), workflow.Out("hist", TypeHist)).
		Module("contour", "Contour", workflow.In("data", TypeGrid), workflow.Out("surface", TypeMesh)).
		Module("smooth", "Smooth", workflow.In("surface", TypeMesh), workflow.Out("surface", TypeMesh)).
		Module("render", "Render", workflow.In("surface", TypeMesh), workflow.Out("image", TypeImage)).
		Param("reader", "file", "head.120.vtk").
		Param("reader", "dim", "24").
		Param("contour", "isovalue", "57").
		Param("smooth", "iterations", "2").
		Connect("reader", "data", "histogram", "data").
		Connect("reader", "data", "contour", "data").
		Connect("contour", "surface", "smooth", "surface").
		Connect("smooth", "surface", "render", "surface").
		MustBuild()
	return wf
}

// DownloadAndRender builds the Figure 2 analogy-template "before" workflow:
// download a file from the Web and create a simple visualization.
func DownloadAndRender() *workflow.Workflow {
	return workflow.NewBuilder("dl-render", "download-and-render").
		Module("download", "Download", workflow.Out("data", TypeGrid)).
		Module("contour", "Contour", workflow.In("data", TypeGrid), workflow.Out("surface", TypeMesh)).
		Module("render", "Render", workflow.In("surface", TypeMesh), workflow.Out("image", TypeImage)).
		Param("download", "url", "http://example.org/dataset.vtk").
		Param("contour", "isovalue", "57").
		Connect("download", "data", "contour", "data").
		Connect("contour", "surface", "render", "surface").
		MustBuild()
}

// DownloadAndRenderSmoothed is DownloadAndRender with smoothing inserted —
// the "after" half of the Figure 2 analogy template.
func DownloadAndRenderSmoothed() *workflow.Workflow {
	return workflow.NewBuilder("dl-render-smooth", "download-and-render-smoothed").
		Module("download", "Download", workflow.Out("data", TypeGrid)).
		Module("contour", "Contour", workflow.In("data", TypeGrid), workflow.Out("surface", TypeMesh)).
		Module("smooth", "Smooth", workflow.In("surface", TypeMesh), workflow.Out("surface", TypeMesh)).
		Module("render", "Render", workflow.In("surface", TypeMesh), workflow.Out("image", TypeImage)).
		Param("download", "url", "http://example.org/dataset.vtk").
		Param("contour", "isovalue", "57").
		Param("smooth", "iterations", "2").
		Connect("download", "data", "contour", "data").
		Connect("contour", "surface", "smooth", "surface").
		Connect("smooth", "surface", "render", "surface").
		MustBuild()
}

// Genomics builds the sequencing pipeline sketched in §2.1's genomics
// motivation: generate reads, trim, align, call variants, report.
func Genomics(sample string) *workflow.Workflow {
	wf := workflow.NewBuilder("genomics-"+sample, "genomics-"+sample).
		Module("gen", "SequenceGen", workflow.Out("reads", TypeSeq)).
		Module("trim", "Trim", workflow.In("reads", TypeSeq), workflow.Out("reads", TypeSeq)).
		Module("align", "Align", workflow.In("reads", TypeSeq), workflow.Out("scores", TypeAlign)).
		Module("variants", "VariantCall", workflow.In("scores", TypeAlign), workflow.Out("variants", TypeTable)).
		Module("report", "Report", workflow.In("rows", TypeTable), workflow.Out("report", TypeImage)).
		Param("gen", "sample", sample).
		Param("gen", "reads", "200").
		Param("align", "reference", "GRCh-sim").
		Param("variants", "minScore", "0.5").
		Connect("gen", "reads", "trim", "reads").
		Connect("trim", "reads", "align", "reads").
		Connect("align", "scores", "variants", "scores").
		Connect("variants", "variants", "report", "rows").
		MustBuild()
	return wf
}

// Forecasting builds the environmental-observatory pipeline: sensor feed →
// clean → moving average → forecast → alert.
func Forecasting(station string) *workflow.Workflow {
	return workflow.NewBuilder("forecast-"+station, "forecast-"+station).
		Module("sensor", "SensorGen", workflow.Out("series", TypeSeries)).
		Module("clean", "Clean", workflow.In("series", TypeSeries), workflow.Out("series", TypeSeries)).
		Module("ma", "MovingAverage", workflow.In("series", TypeSeries), workflow.Out("series", TypeSeries)).
		Module("forecast", "Forecast", workflow.In("series", TypeSeries), workflow.Out("series", TypeSeries)).
		Module("alert", "Alert", workflow.In("series", TypeSeries), workflow.Out("alerts", TypeTable)).
		Param("sensor", "station", station).
		Param("sensor", "samples", "240").
		Param("alert", "threshold", "25").
		Connect("sensor", "series", "clean", "series").
		Connect("clean", "series", "ma", "series").
		Connect("ma", "series", "forecast", "series").
		Connect("forecast", "series", "alert", "series").
		MustBuild()
}

// RandomLayered generates a random layered DAG workflow for scaling
// experiments: `layers` layers of `width` Stage modules, each drawing
// `fanin` inputs from the previous layer. Layer 0 is Source modules.
// The same seed always yields the same workflow.
func RandomLayered(seed int64, layers, width, fanin int) *workflow.Workflow {
	if layers < 2 {
		layers = 2
	}
	if width < 1 {
		width = 1
	}
	if fanin < 1 {
		fanin = 1
	}
	if fanin > width {
		fanin = width
	}
	r := rand.New(rand.NewSource(seed))
	b := workflow.NewBuilder(fmt.Sprintf("rand-%d-%dx%d", seed, layers, width),
		fmt.Sprintf("random-layered-%dx%d", layers, width))
	for i := 0; i < width; i++ {
		id := modID(0, i)
		b.Module(id, "Source", workflow.Out("out", TypeData)).
			Param(id, "seed", fmt.Sprintf("%d-%d", seed, i))
	}
	for l := 1; l < layers; l++ {
		for i := 0; i < width; i++ {
			id := modID(l, i)
			var ports []workflow.PortSpec
			for f := 0; f < fanin; f++ {
				ports = append(ports, workflow.In(fmt.Sprintf("in%d", f), TypeData))
			}
			ports = append(ports, workflow.Out("out", TypeData))
			b.Module(id, "Stage", ports...)
			b.Param(id, "work", "1")
			// Choose fanin distinct predecessors from the previous layer.
			perm := r.Perm(width)
			for f := 0; f < fanin; f++ {
				b.Connect(modID(l-1, perm[f]), "out", id, fmt.Sprintf("in%d", f))
			}
		}
	}
	return b.MustBuild()
}

func modID(layer, idx int) string { return fmt.Sprintf("m%02d_%02d", layer, idx) }

// Chain generates a linear n-module workflow (Source followed by n-1
// Stages): the minimal-parallelism baseline for capture-overhead
// experiments.
func Chain(n int) *workflow.Workflow {
	if n < 1 {
		n = 1
	}
	b := workflow.NewBuilder(fmt.Sprintf("chain-%d", n), fmt.Sprintf("chain-%d", n))
	b.Module("s00", "Source", workflow.Out("out", TypeData)).Param("s00", "seed", "chain")
	prev := "s00"
	for i := 1; i < n; i++ {
		id := fmt.Sprintf("s%02d", i)
		b.Module(id, "Stage", workflow.In("in0", TypeData), workflow.Out("out", TypeData))
		b.Param(id, "work", "1")
		b.Connect(prev, "out", id, "in0")
		prev = id
	}
	return b.MustBuild()
}
