package views

import (
	"context"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

// chainLog runs a 6-module chain and returns the workflow and its log.
func chainLog(t *testing.T) (*workflow.Workflow, *provenance.RunLog) {
	t.Helper()
	wf := workloads.Chain(6)
	col := provenance.NewCollector()
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	e := engine.New(engine.Options{Registry: reg, Recorder: col, Workers: 1})
	res, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	log, _ := col.Log(res.RunID)
	return wf, log
}

func TestGroupValidation(t *testing.T) {
	v := NewView("v")
	if err := v.Group("", "a"); err == nil {
		t.Fatal("empty group name accepted")
	}
	if err := v.Group("g1", "a"); err != nil {
		t.Fatal(err)
	}
	if err := v.Group("g2", "a"); err == nil {
		t.Fatal("module in two groups accepted")
	}
	// Re-adding to the same group is idempotent.
	if err := v.Group("g1", "a"); err != nil {
		t.Fatal(err)
	}
	if got := v.Members("g1"); len(got) != 1 {
		t.Fatalf("members = %v", got)
	}
}

func TestApplyQuotient(t *testing.T) {
	wf, _ := chainLog(t)
	v := NewView("v")
	// Group the middle four of s00..s05.
	if err := v.Group("mid", "s01", "s02", "s03", "s04"); err != nil {
		t.Fatal(err)
	}
	aw, err := v.Apply(wf)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes: s00, mid, s05.
	if aw.Graph.NumNodes() != 3 {
		t.Fatalf("abstract nodes = %d", aw.Graph.NumNodes())
	}
	if aw.Graph.NumEdges() != 2 {
		t.Fatalf("abstract edges = %d", aw.Graph.NumEdges())
	}
}

func TestApplyUnknownModule(t *testing.T) {
	wf, _ := chainLog(t)
	v := NewView("v")
	if err := v.Group("g", "ghost"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Apply(wf); err == nil {
		t.Fatal("view over unknown module accepted")
	}
}

func TestUnsoundViewRejected(t *testing.T) {
	// Diamond: a -> b -> d, a -> c -> d. Grouping {a, d} while leaving b, c
	// out creates group->b->group and group->c->group cycles.
	wf := workloads.MedicalImaging() // reader -> contour -> render; reader -> histogram
	v := NewView("bad")
	if err := v.Group("g", "reader", "render"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Apply(wf); err == nil || !strings.Contains(err.Error(), "unsound") {
		t.Fatalf("err = %v, want unsound", err)
	}
}

func TestAbstractProvenanceHidesInternalArtifacts(t *testing.T) {
	wf, log := chainLog(t)
	v := NewView("v")
	if err := v.Group("mid", "s01", "s02", "s03", "s04"); err != nil {
		t.Fatal(err)
	}
	ap, err := v.Abstract(log)
	if err != nil {
		t.Fatal(err)
	}
	// Concrete: 6 executions + 6 artifacts. Abstract: 3 composites +
	// boundary artifacts. Artifacts internal to mid: outputs of s01..s03
	// (each consumed within mid) = 3 hidden.
	if ap.HiddenArtifacts != 3 {
		t.Fatalf("hidden = %d", ap.HiddenArtifacts)
	}
	if !ap.Graph.IsDAG() {
		t.Fatal("abstract provenance cyclic")
	}
	_ = wf
}

func TestAbstractStoredMatchesAbstract(t *testing.T) {
	_, log := chainLog(t)
	v := NewView("v")
	if err := v.Group("mid", "s01", "s02", "s03", "s04"); err != nil {
		t.Fatal(err)
	}
	want, err := v.Abstract(log)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := store.OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	backends := []store.Store{store.NewMemStore(), store.NewRelStore(), store.NewTripleStore(), fs}
	for _, s := range backends {
		if err := s.PutRunLog(log); err != nil {
			t.Fatal(err)
		}
		ap, err := v.AbstractStored(s, log.Run.ID)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if ap.HiddenArtifacts != want.HiddenArtifacts {
			t.Fatalf("%s: hidden = %d, want %d", s.Name(), ap.HiddenArtifacts, want.HiddenArtifacts)
		}
		if ap.Graph.NumNodes() != want.Graph.NumNodes() || ap.Graph.NumEdges() != want.Graph.NumEdges() {
			t.Fatalf("%s: graph %d/%d, want %d/%d", s.Name(),
				ap.Graph.NumNodes(), ap.Graph.NumEdges(), want.Graph.NumNodes(), want.Graph.NumEdges())
		}
		if !ap.Graph.IsDAG() {
			t.Fatalf("%s: abstract provenance cyclic", s.Name())
		}
	}
	if _, err := v.AbstractStored(store.NewMemStore(), "ghost-run"); err == nil {
		t.Fatal("unknown run accepted")
	}
}

func TestReductionFactor(t *testing.T) {
	_, log := chainLog(t)
	v := NewView("v")
	if err := v.Group("mid", "s01", "s02", "s03", "s04"); err != nil {
		t.Fatal(err)
	}
	r, err := v.Reduction(log)
	if err != nil {
		t.Fatal(err)
	}
	if r.ConcreteNodes != 12 {
		t.Fatalf("concrete = %d", r.ConcreteNodes)
	}
	if r.AbstractNodes >= r.ConcreteNodes {
		t.Fatalf("no reduction: %+v", r)
	}
	if r.Factor <= 1 {
		t.Fatalf("factor = %v", r.Factor)
	}
}

func TestIdentityViewNoReduction(t *testing.T) {
	_, log := chainLog(t)
	v := NewView("identity")
	r, err := v.Reduction(log)
	if err != nil {
		t.Fatal(err)
	}
	if r.ConcreteNodes != r.AbstractNodes || r.Hidden != 0 {
		t.Fatalf("identity view reduced: %+v", r)
	}
}

func TestAbstractPreservesCausalOrder(t *testing.T) {
	wf, log := chainLog(t)
	v := NewView("v")
	if err := v.Group("mid", "s01", "s02", "s03", "s04"); err != nil {
		t.Fatal(err)
	}
	ap, err := v.Abstract(log)
	if err != nil {
		t.Fatal(err)
	}
	// The composite must still sit causally between s00's output and s05.
	var s00exec, s05exec string
	for _, e := range log.Executions {
		switch e.ModuleID {
		case "s00":
			s00exec = "view:" + v.GroupOf("s00")
		case "s05":
			s05exec = "view:" + v.GroupOf("s05")
		}
	}
	reach := ap.Graph.Reachable(graph.NodeID(s00exec))
	if !reach[graph.NodeID("view:mid")] || !reach[graph.NodeID(s05exec)] {
		t.Fatalf("causal order lost: reach = %v", reach)
	}
	_ = wf
}

func TestAutoViewGenomics(t *testing.T) {
	wf := workloads.Genomics("s")
	// Scientist cares only about VariantCall.
	v, err := AutoView(wf, func(m *workflow.Module) bool { return m.Type == "VariantCall" })
	if err != nil {
		t.Fatal(err)
	}
	aw, err := v.Apply(wf)
	if err != nil {
		t.Fatal(err)
	}
	// gen-trim-align collapse into one composite; report is its own
	// composite; variants stays singleton: 3 abstract nodes.
	if aw.Graph.NumNodes() != 3 {
		t.Fatalf("abstract nodes = %d (%v)", aw.Graph.NumNodes(), aw.Graph.NodeIDs())
	}
}

func TestAutoViewAllRelevant(t *testing.T) {
	wf := workloads.Genomics("s")
	v, err := AutoView(wf, func(*workflow.Module) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	aw, err := v.Apply(wf)
	if err != nil {
		t.Fatal(err)
	}
	if aw.Graph.NumNodes() != len(wf.Modules) {
		t.Fatalf("abstract nodes = %d", aw.Graph.NumNodes())
	}
}

func TestAutoViewSoundOnDiamond(t *testing.T) {
	wf := workloads.MedicalImaging()
	// Nothing relevant: everything may merge, but merging must stay sound.
	v, err := AutoView(wf, func(*workflow.Module) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Apply(wf); err != nil {
		t.Fatalf("auto view unsound: %v", err)
	}
}
