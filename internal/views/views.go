// Package views implements user views over workflows and their provenance,
// the paper's answer to provenance overload (§2.4 cites Biton et al.'s
// ZOOM [5]): a scientist declares which modules are relevant, the system
// groups the rest into composite modules, and provenance queries are
// answered at the granularity of the view — fewer nodes, same causal
// story.
//
// A view is a partition of a workflow's modules into named groups. It is
// *sound* when the quotient dataflow graph is acyclic, so the abstracted
// provenance never shows a dependency cycle that the concrete run did not
// have.
package views

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/workflow"
)

// View is a partition of workflow modules into composite groups. Modules
// absent from every group are implicit singletons.
type View struct {
	Name   string
	groups map[string][]string // group name -> module IDs
	byMod  map[string]string   // module ID -> group name
}

// NewView returns an empty view.
func NewView(name string) *View {
	return &View{Name: name, groups: map[string][]string{}, byMod: map[string]string{}}
}

// Group assigns modules to a named composite. A module may belong to one
// group only.
func (v *View) Group(name string, moduleIDs ...string) error {
	if name == "" {
		return fmt.Errorf("views: group name must be non-empty")
	}
	for _, id := range moduleIDs {
		if have, ok := v.byMod[id]; ok && have != name {
			return fmt.Errorf("views: module %q already in group %q", id, have)
		}
	}
	for _, id := range moduleIDs {
		if v.byMod[id] != name {
			v.byMod[id] = name
			v.groups[name] = append(v.groups[name], id)
		}
	}
	return nil
}

// GroupOf returns the group a module maps to; ungrouped modules map to
// themselves (singleton composite).
func (v *View) GroupOf(moduleID string) string {
	if g, ok := v.byMod[moduleID]; ok {
		return g
	}
	return moduleID
}

// Groups returns group names in sorted order (explicit groups only).
func (v *View) Groups() []string {
	out := make([]string, 0, len(v.groups))
	for g := range v.groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Members returns the module IDs of a group, sorted.
func (v *View) Members(group string) []string {
	out := append([]string(nil), v.groups[group]...)
	sort.Strings(out)
	return out
}

// AbstractWorkflow is the quotient of a workflow under a view: one node per
// composite, one edge per cross-group connection.
type AbstractWorkflow struct {
	View  *View
	Graph *graph.Graph
}

// Apply computes the abstract workflow and checks soundness: the quotient
// must be a DAG. A grouping that lumps a producer and a consumer of some
// intermediate module into one composite while leaving that module outside
// creates a cycle and is rejected.
func (v *View) Apply(wf *workflow.Workflow) (*AbstractWorkflow, error) {
	for _, members := range v.groups {
		for _, id := range members {
			if wf.Module(id) == nil {
				return nil, fmt.Errorf("views: view %q groups unknown module %q", v.Name, id)
			}
		}
	}
	g := graph.New()
	for _, m := range wf.Modules {
		grp := v.GroupOf(m.ID)
		g.EnsureNode(graph.Node{ID: graph.NodeID(grp), Label: grp, Kind: "composite"})
	}
	for _, c := range wf.Connections {
		src := v.GroupOf(c.SrcModule)
		dst := v.GroupOf(c.DstModule)
		if src == dst {
			continue // internal edge, hidden by the view
		}
		if !g.HasEdge(graph.NodeID(src), graph.NodeID(dst)) {
			if err := g.AddEdge(graph.Edge{Src: graph.NodeID(src), Dst: graph.NodeID(dst), Label: "flow"}); err != nil {
				return nil, err
			}
		}
	}
	if !g.IsDAG() {
		return nil, fmt.Errorf("views: view %q is unsound: quotient graph is cyclic", v.Name)
	}
	return &AbstractWorkflow{View: v, Graph: g}, nil
}

// AbstractProvenance is a run's causal graph at view granularity: composite
// executions plus only the artifacts that cross composite boundaries.
type AbstractProvenance struct {
	View *View
	// Graph nodes: composite executions (Kind "execution") and boundary
	// artifacts (Kind "artifact").
	Graph *graph.Graph
	// HiddenArtifacts counts artifacts internal to some composite.
	HiddenArtifacts int
}

// Abstract collapses a run log to view granularity. Executions map to their
// module's group; an artifact is hidden when its generator and all its
// consumers live in the same group.
func (v *View) Abstract(l *provenance.RunLog) (*AbstractProvenance, error) {
	cg, err := provenance.BuildCausalGraph(l)
	if err != nil {
		return nil, err
	}
	_ = cg
	// One pass over the events builds the whole adjacency, instead of a
	// per-artifact scan of the event list.
	gen := map[string]string{}
	cons := map[string][]string{}
	for _, ev := range l.Events {
		switch ev.Kind {
		case provenance.EventArtifactGen:
			gen[ev.ArtifactID] = ev.ExecutionID
		case provenance.EventArtifactUsed:
			cons[ev.ArtifactID] = append(cons[ev.ArtifactID], ev.ExecutionID)
		}
	}
	return v.abstract(l, gen, cons)
}

// AbstractStored collapses a stored run to view granularity, reading the
// causal adjacency through the store's batch traversal API: two Expand
// calls (generators and consumers of every artifact, whole frontiers at
// once) replace per-artifact navigation, so the abstraction works at batch
// cost on any backend — including FileStore, where it touches disk only
// for the run log itself.
func (v *View) AbstractStored(s store.Store, runID string) (*AbstractProvenance, error) {
	l, err := s.RunLog(runID)
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(l.Artifacts))
	for _, a := range l.Artifacts {
		ids = append(ids, a.ID)
	}
	up, err := s.Expand(ids, store.Up)
	if err != nil {
		return nil, err
	}
	down, err := s.Expand(ids, store.Down)
	if err != nil {
		return nil, err
	}
	gen := make(map[string]string, len(up))
	for id, parents := range up {
		if len(parents) > 0 {
			gen[id] = parents[0]
		}
	}
	cons := make(map[string][]string, len(down))
	for id, consumers := range down {
		cons[id] = consumers
	}
	return v.abstract(l, gen, cons)
}

// abstract builds the quotient provenance graph from precomputed artifact
// adjacency: gen maps artifact -> generating execution, cons maps
// artifact -> consuming executions.
func (v *View) abstract(l *provenance.RunLog, gen map[string]string, cons map[string][]string) (*AbstractProvenance, error) {
	g := graph.New()
	execGroup := map[string]string{} // execution ID -> composite node ID
	for _, e := range l.Executions {
		grp := "view:" + v.GroupOf(e.ModuleID)
		execGroup[e.ID] = grp
		g.EnsureNode(graph.Node{ID: graph.NodeID(grp), Label: grp, Kind: string(provenance.KindExecution)})
	}
	hidden := 0
	for _, a := range l.Artifacts {
		// Keep only adjacency within this run: store-wide maps (from
		// AbstractStored's Expand) may mention executions of other runs.
		genExec, hasGen := gen[a.ID]
		if hasGen {
			_, hasGen = execGroup[genExec]
		}
		consumers := cons[a.ID][:0:0]
		for _, c := range cons[a.ID] {
			if _, ok := execGroup[c]; ok {
				consumers = append(consumers, c)
			}
		}
		internal := hasGen && len(consumers) > 0
		if internal {
			for _, c := range consumers {
				if execGroup[c] != execGroup[genExec] {
					internal = false
					break
				}
			}
		}
		if internal {
			hidden++
			continue
		}
		if err := g.AddNode(graph.Node{ID: graph.NodeID(a.ID), Label: a.Type, Kind: string(provenance.KindArtifact)}); err != nil {
			return nil, err
		}
		if hasGen {
			src := graph.NodeID(execGroup[genExec])
			if !g.HasEdge(src, graph.NodeID(a.ID)) {
				if err := g.AddEdge(graph.Edge{Src: src, Dst: graph.NodeID(a.ID), Label: provenance.EdgeGenerated}); err != nil {
					return nil, err
				}
			}
		}
		for _, c := range consumers {
			dst := graph.NodeID(execGroup[c])
			if !g.HasEdge(graph.NodeID(a.ID), dst) {
				if err := g.AddEdge(graph.Edge{Src: graph.NodeID(a.ID), Dst: dst, Label: provenance.EdgeUsed}); err != nil {
					return nil, err
				}
			}
		}
	}
	if !g.IsDAG() {
		return nil, fmt.Errorf("views: view %q yields cyclic abstract provenance", v.Name)
	}
	return &AbstractProvenance{View: v, Graph: g, HiddenArtifacts: hidden}, nil
}

// Reduction quantifies how much a view shrinks the visible provenance: the
// metric of experiment E5.
type Reduction struct {
	ConcreteNodes int
	AbstractNodes int
	Hidden        int
	Factor        float64
}

// Reduction computes the node-count reduction of a view over a run.
func (v *View) Reduction(l *provenance.RunLog) (*Reduction, error) {
	ap, err := v.Abstract(l)
	if err != nil {
		return nil, err
	}
	concrete := len(l.Executions) + len(l.Artifacts)
	abstract := ap.Graph.NumNodes()
	r := &Reduction{ConcreteNodes: concrete, AbstractNodes: abstract, Hidden: ap.HiddenArtifacts}
	if abstract > 0 {
		r.Factor = float64(concrete) / float64(abstract)
	}
	return r, nil
}

// AutoView builds a sound view from a relevance predicate (ZOOM's user
// input: which module types matter to this scientist). Irrelevant modules
// are greedily merged into composites along dataflow chains; a merge that
// would make the quotient cyclic is skipped.
func AutoView(wf *workflow.Workflow, relevant func(m *workflow.Module) bool) (*View, error) {
	v := NewView("auto")
	order, err := wf.TopoOrder()
	if err != nil {
		return nil, err
	}
	// Union-find over irrelevant modules.
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	for _, id := range order {
		if !relevant(wf.Module(id)) {
			parent[id] = id
		}
	}
	tryMerge := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		parent[rb] = ra
		// Soundness check: undo if cyclic.
		trial := NewView("trial")
		groups := map[string][]string{}
		for id := range parent {
			root := find(id)
			groups[root] = append(groups[root], id)
		}
		for root, members := range groups {
			if err := trial.Group("g:"+root, members...); err != nil {
				parent[rb] = rb
				return
			}
		}
		if _, err := trial.Apply(wf); err != nil {
			parent[rb] = rb
		}
	}
	for _, c := range wf.Connections {
		_, aIrr := parent[c.SrcModule]
		_, bIrr := parent[c.DstModule]
		if aIrr && bIrr {
			tryMerge(c.SrcModule, c.DstModule)
		}
	}
	groups := map[string][]string{}
	for id := range parent {
		root := find(id)
		groups[root] = append(groups[root], id)
	}
	roots := make([]string, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	for i, root := range roots {
		if err := v.Group(fmt.Sprintf("composite-%02d", i), groups[root]...); err != nil {
			return nil, err
		}
	}
	if _, err := v.Apply(wf); err != nil {
		return nil, err
	}
	return v, nil
}
