// Package vis renders workflows, provenance graphs, OPM graphs and version
// trees as Graphviz DOT and as ASCII, supporting the paper's emphasis on
// visualization both for figures (Figure 1's two-panel view) and for
// provenance analytics (§2.4).
package vis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/evolution"
	"repro/internal/graph"
	"repro/internal/opm"
	"repro/internal/provenance"
	"repro/internal/workflow"
)

// quote escapes a string for DOT.
func quote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

// GraphDOT renders any generic graph as DOT, shaping nodes by Kind
// (artifacts as ellipses, executions/processes as boxes).
func GraphDOT(name string, g *graph.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n  rankdir=TB;\n", quote(name))
	for _, n := range g.Nodes() {
		shape := "box"
		switch n.Kind {
		case string(provenance.KindArtifact): // same tag as opm.Artifact
			shape = "ellipse"
		case string(opm.Agent):
			shape = "octagon"
		}
		label := n.Label
		if label == "" {
			label = string(n.ID)
		}
		fmt.Fprintf(&b, "  %s [label=%s, shape=%s];\n", quote(string(n.ID)), quote(label), shape)
	}
	for _, e := range g.Edges() {
		if e.Label != "" {
			fmt.Fprintf(&b, "  %s -> %s [label=%s];\n", quote(string(e.Src)), quote(string(e.Dst)), quote(e.Label))
		} else {
			fmt.Fprintf(&b, "  %s -> %s;\n", quote(string(e.Src)), quote(string(e.Dst)))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// WorkflowDOT renders a workflow specification (prospective provenance).
func WorkflowDOT(wf *workflow.Workflow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n  rankdir=TB;\n", quote(wf.ID))
	for _, m := range wf.Modules {
		label := m.Name
		if len(m.Params) > 0 {
			keys := make([]string, 0, len(m.Params))
			for k := range m.Params {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var ps []string
			for _, k := range keys {
				ps = append(ps, k+"="+m.Params[k])
			}
			label += "\\n" + strings.Join(ps, ", ")
		}
		fmt.Fprintf(&b, "  %s [label=%s, shape=box];\n", quote(m.ID), quote(label))
	}
	for _, c := range wf.Connections {
		fmt.Fprintf(&b, "  %s -> %s [label=%s];\n",
			quote(c.SrcModule), quote(c.DstModule), quote(c.SrcPort+"→"+c.DstPort))
	}
	b.WriteString("}\n")
	return b.String()
}

// ProvenanceDOT renders a run's causal graph (retrospective provenance).
func ProvenanceDOT(l *provenance.RunLog) (string, error) {
	cg, err := provenance.BuildCausalGraph(l)
	if err != nil {
		return "", err
	}
	return GraphDOT("run_"+l.Run.ID, cg.Graph()), nil
}

// OPMDOT renders an OPM graph with per-edge-kind styles.
func OPMDOT(g *opm.Graph) string {
	var b strings.Builder
	b.WriteString("digraph opm {\n  rankdir=BT;\n")
	ids := make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := g.Nodes[id]
		shape := map[opm.NodeKind]string{
			opm.Artifact: "ellipse", opm.Process: "box", opm.Agent: "octagon",
		}[n.Kind]
		label := n.Value
		if label == "" {
			label = id
		}
		fmt.Fprintf(&b, "  %s [label=%s, shape=%s];\n", quote(id), quote(label), shape)
	}
	style := map[opm.EdgeKind]string{
		opm.Used:            "solid",
		opm.WasGeneratedBy:  "solid",
		opm.WasControlledBy: "dotted",
		opm.WasTriggeredBy:  "dashed",
		opm.WasDerivedFrom:  "bold",
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  %s -> %s [label=%s, style=%s];\n",
			quote(e.Effect), quote(e.Cause), quote(string(e.Kind)), style[e.Kind])
	}
	b.WriteString("}\n")
	return b.String()
}

// VersionTreeDOT renders a version tree.
func VersionTreeDOT(t *evolution.Tree) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n  rankdir=TB;\n", quote(t.Name))
	var walk func(id int)
	walk = func(id int) {
		v, err := t.Version(id)
		if err != nil {
			return
		}
		label := fmt.Sprintf("v%d", id)
		if v.Tag != "" {
			label += "\\n[" + v.Tag + "]"
		}
		if v.Note != "" {
			label += "\\n" + v.Note
		}
		fmt.Fprintf(&b, "  v%d [label=%s, shape=circle];\n", id, quote(label))
		for _, c := range t.Children(id) {
			fmt.Fprintf(&b, "  v%d -> v%d;\n", id, c)
			walk(c)
		}
	}
	walk(t.Root())
	b.WriteString("}\n")
	return b.String()
}

// WorkflowASCII renders the workflow layer by layer, the terminal
// counterpart of the visual programming canvas.
func WorkflowASCII(wf *workflow.Workflow) (string, error) {
	layers, err := wf.Graph().Layers()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "workflow %s (%d modules, %d connections)\n", wf.ID, len(wf.Modules), len(wf.Connections))
	for i, layer := range layers {
		names := make([]string, len(layer))
		for j, id := range layer {
			m := wf.Module(string(id))
			names[j] = fmt.Sprintf("%s:%s", m.ID, m.Type)
		}
		fmt.Fprintf(&b, "  layer %d: %s\n", i, strings.Join(names, "  "))
		if i < len(layers)-1 {
			b.WriteString("      |\n      v\n")
		}
	}
	return b.String(), nil
}

// RunASCII summarizes a run log as an indented event listing: the
// retrospective panel of Figure 1.
func RunASCII(l *provenance.RunLog) string {
	var b strings.Builder
	fmt.Fprintf(&b, "run %s of workflow %s (agent %s, status %s)\n",
		l.Run.ID, l.Run.WorkflowID, l.Run.Agent, l.Run.Status)
	for _, e := range l.Executions {
		fmt.Fprintf(&b, "  exec %s module=%s [%d,%d] status=%s\n",
			e.ID, e.ModuleID, e.Start, e.End, e.Status)
		for _, a := range l.ArtifactsUsedBy(e.ID) {
			fmt.Fprintf(&b, "    used      %s (%s, %s)\n", a.ID, a.Type, short(a.ContentHash))
		}
		for _, a := range l.ArtifactsGeneratedBy(e.ID) {
			fmt.Fprintf(&b, "    generated %s (%s, %s)\n", a.ID, a.Type, short(a.ContentHash))
		}
	}
	for _, an := range l.Annotations {
		fmt.Fprintf(&b, "  note on %s: %s = %q (by %s)\n", an.Subject, an.Key, an.Value, an.Author)
	}
	return b.String()
}

func short(h string) string {
	if len(h) > 10 {
		return h[:10]
	}
	return h
}
