package vis

import (
	"context"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/evolution"
	"repro/internal/opm"
	"repro/internal/provenance"
	"repro/internal/workloads"
)

func figure1Log(t *testing.T) *provenance.RunLog {
	t.Helper()
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	col := provenance.NewCollector()
	e := engine.New(engine.Options{Registry: reg, Recorder: col, Workers: 1})
	res, err := e.Run(context.Background(), workloads.MedicalImaging(), nil)
	if err != nil {
		t.Fatal(err)
	}
	col.Annotate(res.Artifacts["render.image"], provenance.KindArtifact, "note", "bone", "susan")
	log, _ := col.Log(res.RunID)
	return log
}

func TestWorkflowDOT(t *testing.T) {
	dot := WorkflowDOT(workloads.MedicalImaging())
	for _, want := range []string{"digraph", `"reader"`, `"contour" -> "render"`, "isovalue=57"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("missing %q in:\n%s", want, dot)
		}
	}
}

func TestProvenanceDOT(t *testing.T) {
	log := figure1Log(t)
	dot, err := ProvenanceDOT(log)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "ellipse") || !strings.Contains(dot, "box") {
		t.Fatalf("shapes missing:\n%s", dot)
	}
	if !strings.Contains(dot, "generated") || !strings.Contains(dot, "used") {
		t.Fatal("edge labels missing")
	}
}

func TestOPMDOT(t *testing.T) {
	log := figure1Log(t)
	g, err := opm.FromRunLog(log, "native")
	if err != nil {
		t.Fatal(err)
	}
	dot := OPMDOT(g)
	for _, want := range []string{"octagon", "wasGeneratedBy", "wasControlledBy", "dotted"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestVersionTreeDOT(t *testing.T) {
	tree := evolution.NewTree("demo")
	v1, err := tree.Commit(tree.Root(), "u", "import",
		evolution.ImportWorkflow(workloads.MedicalImaging()))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Tag(v1, "baseline"); err != nil {
		t.Fatal(err)
	}
	dot := VersionTreeDOT(tree)
	if !strings.Contains(dot, "v0 -> v1") || !strings.Contains(dot, "baseline") {
		t.Fatalf("dot:\n%s", dot)
	}
}

func TestWorkflowASCII(t *testing.T) {
	text, err := WorkflowASCII(workloads.MedicalImaging())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "layer 0: reader:FileReader") {
		t.Fatalf("ascii:\n%s", text)
	}
	if !strings.Contains(text, "render:Render") {
		t.Fatalf("ascii:\n%s", text)
	}
}

func TestRunASCII(t *testing.T) {
	log := figure1Log(t)
	text := RunASCII(log)
	for _, want := range []string{"run ", "exec ", "generated", "used", `note on`, `"bone"`} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

func TestQuoteEscaping(t *testing.T) {
	if quote(`a"b`) != `"a\"b"` {
		t.Fatalf("quote = %s", quote(`a"b`))
	}
}
