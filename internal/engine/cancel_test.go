package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/provenance"
	"repro/internal/workflow"
)

// TestContextCancellationFailsRun verifies that cancelling the run context
// surfaces as module failure (recorded in provenance) rather than a hang.
func TestContextCancellationFailsRun(t *testing.T) {
	r := NewRegistry()
	started := make(chan struct{})
	r.Register("Slow", func(ec *ExecContext) (map[string]Value, error) {
		close(started)
		select {
		case <-ec.Ctx.Done():
			return nil, ec.Ctx.Err()
		case <-time.After(10 * time.Second):
			return map[string]Value{"out": {Type: "int", Data: 1}}, nil
		}
	})
	r.Register("After", func(ec *ExecContext) (map[string]Value, error) {
		return map[string]Value{"out": {Type: "int", Data: 2}}, nil
	})
	wf := workflow.NewBuilder("slow", "slow").
		Module("slow", "Slow", workflow.Out("out", "int")).
		Module("after", "After", workflow.In("in", "int"), workflow.Out("out", "int")).
		Connect("slow", "out", "after", "in").
		MustBuild()
	col := provenance.NewCollector()
	e := New(Options{Registry: r, Recorder: col})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	done := make(chan *Result, 1)
	go func() {
		res, err := e.Run(ctx, wf, nil)
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	select {
	case res := <-done:
		if res.Status != provenance.StatusFailed {
			t.Fatalf("status = %s, want failed", res.Status)
		}
		if len(res.Failed) != 1 || res.Failed[0] != "slow" {
			t.Fatalf("failed = %v", res.Failed)
		}
		if len(res.Skipped) != 1 || res.Skipped[0] != "after" {
			t.Fatalf("skipped = %v", res.Skipped)
		}
		log, _ := col.Log(res.RunID)
		if log.ExecutionForModule("slow").Status != provenance.StatusFailed {
			t.Fatal("cancellation not recorded in provenance")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run hung after cancellation")
	}
}

// TestLatencySimulation verifies the simulated-environment latency hook
// delays execution and honors cancellation.
func TestLatencySimulation(t *testing.T) {
	r := NewRegistry()
	r.Register("Quick", func(ec *ExecContext) (map[string]Value, error) {
		return map[string]Value{"out": {Type: "int", Data: 1}}, nil
	})
	wf := workflow.NewBuilder("lat", "lat").
		Module("m", "Quick", workflow.Out("out", "int")).
		MustBuild()
	e := New(Options{Registry: r, Latency: func(m *workflow.Module) time.Duration {
		return 30 * time.Millisecond
	}})
	start := time.Now()
	res, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != provenance.StatusOK {
		t.Fatalf("status = %s", res.Status)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("latency not applied: %s", elapsed)
	}
}
