package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/provenance"
	"repro/internal/workflow"
)

// Options configures an Engine.
type Options struct {
	// Registry supplies module implementations. Required.
	Registry *Registry
	// Recorder captures retrospective provenance. nil disables capture
	// (the baseline of experiment E3).
	Recorder provenance.Recorder
	// Workers bounds parallel module executions. 0 means GOMAXPROCS.
	Workers int
	// Cache memoizes executions across runs. nil disables caching.
	Cache *Cache
	// Faults injects failures: moduleID -> error message. A module listed
	// here fails instead of executing; its downstream is skipped.
	Faults map[string]string
	// Latency simulates per-module execution time (grid/Web-service
	// environments — see DESIGN.md substitution 3). nil means no delay.
	Latency func(m *workflow.Module) time.Duration
	// Agent names the user on whose behalf runs execute.
	Agent string
	// Environment is recorded on every run (execution-environment
	// information required by retrospective provenance).
	Environment map[string]string
}

// Engine executes workflows.
type Engine struct {
	opt Options
	rec provenance.Recorder
}

// New returns an Engine. It panics if no registry is supplied (a programming
// error, not a runtime condition).
func New(opt Options) *Engine {
	if opt.Registry == nil {
		panic("engine: Options.Registry is required")
	}
	rec := opt.Recorder
	if rec == nil {
		rec = provenance.NopRecorder{}
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.Agent == "" {
		opt.Agent = "anonymous"
	}
	return &Engine{opt: opt, rec: rec}
}

// Result summarizes a run: terminal status, every produced value keyed by
// "module.port", and per-module dispositions.
type Result struct {
	RunID     string
	Status    provenance.ExecStatus
	Outputs   map[string]Value  // "module.port" -> value
	Artifacts map[string]string // "module.port" -> artifact ID ("" if capture off)
	Failed    []string          // module IDs that failed
	Skipped   []string          // module IDs skipped due to upstream failure
	Cached    []string          // module IDs satisfied from cache
	Elapsed   time.Duration
}

// Output returns the value produced on module's port.
func (r *Result) Output(moduleID, port string) (Value, error) {
	v, ok := r.Outputs[moduleID+"."+port]
	if !ok {
		return Value{}, fmt.Errorf("engine: run %s produced no output %s.%s", r.RunID, moduleID, port)
	}
	return v, nil
}

type moduleOutcome struct {
	status  provenance.ExecStatus
	outputs map[string]Value
}

// Run executes the workflow. inputs provides values for input ports not fed
// by any connection, keyed "module.port"; they are recorded as raw input
// artifacts (data entering the system from outside, like the CT scan of
// Figure 1).
func (e *Engine) Run(ctx context.Context, wf *workflow.Workflow, inputs map[string]Value) (*Result, error) {
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	// Every input port must be fed by a connection or an external input.
	fed := map[string]bool{}
	for _, c := range wf.Connections {
		fed[c.DstModule+"."+c.DstPort] = true
	}
	for _, m := range wf.Modules {
		for _, p := range m.Inputs {
			key := m.ID + "." + p.Name
			if !fed[key] {
				if _, ok := inputs[key]; !ok {
					return nil, fmt.Errorf("engine: input port %s is neither connected nor supplied", key)
				}
			}
		}
	}
	// Resolve implementations up front so missing registrations fail fast.
	impls := make(map[string]Func, len(wf.Modules))
	for _, m := range wf.Modules {
		fn, err := e.opt.Registry.Lookup(m.Type)
		if err != nil {
			return nil, err
		}
		impls[m.ID] = fn
	}

	start := time.Now()
	runID := e.rec.BeginRun(wf.ID, wf.ContentHash(), e.opt.Agent, e.opt.Environment)

	// Record external inputs as raw artifacts.
	extArtifacts := map[string]string{} // "module.port" -> artifact ID
	extKeys := make([]string, 0, len(inputs))
	for k := range inputs {
		extKeys = append(extKeys, k)
	}
	sort.Strings(extKeys)
	for _, k := range extKeys {
		v := inputs[k]
		extArtifacts[k] = e.rec.RecordInput(runID, provenance.Artifact{
			Type:        v.Type,
			ContentHash: v.Hash(),
			Size:        v.Size(),
			Preview:     v.Preview(),
		})
	}

	st := &runState{
		wf:        wf,
		inputs:    inputs,
		extArts:   extArtifacts,
		outcomes:  make(map[string]*moduleOutcome, len(wf.Modules)),
		artifacts: make(map[string]string),
		waiting:   make(map[string]int, len(wf.Modules)),
		succs:     make(map[string][]string, len(wf.Modules)),
	}
	for _, m := range wf.Modules {
		st.waiting[m.ID] = 0
	}
	for _, c := range wf.Connections {
		st.waiting[c.DstModule]++
		st.succs[c.SrcModule] = append(st.succs[c.SrcModule], c.DstModule)
	}

	ready := make(chan string, len(wf.Modules))
	for _, m := range wf.Modules {
		if st.waiting[m.ID] == 0 {
			ready <- m.ID
		}
	}

	sem := make(chan struct{}, e.opt.Workers)
	done := make(chan string, len(wf.Modules))

	// Scheduler: dispatch ready modules; on completion, release dependents.
	// Every module completes exactly once (failed upstream yields a skipped
	// execution), so draining `done` len(modules) times is a full barrier.
	remaining := len(wf.Modules)
	for remaining > 0 {
		select {
		case id := <-ready:
			go func(moduleID string) {
				sem <- struct{}{}
				defer func() { <-sem }()
				e.execModule(ctx, runID, st, moduleID, impls[moduleID])
				done <- moduleID
			}(id)
		case id := <-done:
			remaining--
			for _, succ := range st.succs[id] {
				st.mu.Lock()
				st.waiting[succ]--
				isReady := st.waiting[succ] == 0
				st.mu.Unlock()
				if isReady {
					ready <- succ
				}
			}
		}
	}

	res := &Result{
		RunID:     runID,
		Status:    provenance.StatusOK,
		Outputs:   map[string]Value{},
		Artifacts: map[string]string{},
		Elapsed:   time.Since(start),
	}
	st.mu.Lock()
	for key, v := range st.values() {
		res.Outputs[key] = v
	}
	for key, id := range st.artifacts {
		res.Artifacts[key] = id
	}
	for _, m := range wf.Modules {
		switch st.outcomes[m.ID].status {
		case provenance.StatusFailed:
			res.Failed = append(res.Failed, m.ID)
		case provenance.StatusSkipped:
			res.Skipped = append(res.Skipped, m.ID)
		case provenance.StatusCached:
			res.Cached = append(res.Cached, m.ID)
		}
	}
	st.mu.Unlock()
	sort.Strings(res.Failed)
	sort.Strings(res.Skipped)
	sort.Strings(res.Cached)
	if len(res.Failed) > 0 || len(res.Skipped) > 0 {
		res.Status = provenance.StatusFailed
	}
	e.rec.EndRun(runID, res.Status)
	return res, nil
}

type runState struct {
	mu        sync.Mutex
	wf        *workflow.Workflow
	inputs    map[string]Value
	extArts   map[string]string
	outcomes  map[string]*moduleOutcome
	artifacts map[string]string // "module.port" -> artifact ID
	waiting   map[string]int
	succs     map[string][]string
}

// values flattens completed outputs into "module.port" keys. Caller holds mu.
func (st *runState) values() map[string]Value {
	out := map[string]Value{}
	for id, oc := range st.outcomes {
		for port, v := range oc.outputs {
			out[id+"."+port] = v
		}
	}
	return out
}

// gatherInputs resolves the values and artifact IDs feeding a module.
func (st *runState) gatherInputs(moduleID string) (map[string]Value, map[string]string, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	vals := map[string]Value{}
	arts := map[string]string{}
	m := st.wf.Module(moduleID)
	for _, c := range st.wf.Connections {
		if c.DstModule != moduleID {
			continue
		}
		oc := st.outcomes[c.SrcModule]
		if oc == nil || oc.status == provenance.StatusFailed || oc.status == provenance.StatusSkipped {
			return nil, nil, false
		}
		v, ok := oc.outputs[c.SrcPort]
		if !ok {
			return nil, nil, false
		}
		vals[c.DstPort] = v
		arts[c.DstPort] = st.artifacts[c.SrcModule+"."+c.SrcPort]
	}
	for _, p := range m.Inputs {
		if _, ok := vals[p.Name]; ok {
			continue
		}
		key := moduleID + "." + p.Name
		if v, ok := st.inputs[key]; ok {
			vals[p.Name] = v
			arts[p.Name] = st.extArts[key]
		}
	}
	return vals, arts, true
}

func (e *Engine) execModule(ctx context.Context, runID string, st *runState, moduleID string, fn Func) {
	m := st.wf.Module(moduleID)
	vals, arts, ok := st.gatherInputs(moduleID)
	if !ok {
		// Upstream failed: record a skipped execution.
		execID := e.rec.BeginExecution(runID, moduleID, m.Type, m.Params)
		e.rec.EndExecution(execID, provenance.StatusSkipped, "upstream failure", 0)
		st.mu.Lock()
		st.outcomes[moduleID] = &moduleOutcome{status: provenance.StatusSkipped, outputs: map[string]Value{}}
		st.mu.Unlock()
		return
	}

	execID := e.rec.BeginExecution(runID, moduleID, m.Type, m.Params)
	inPorts := make([]string, 0, len(vals))
	for p := range vals {
		inPorts = append(inPorts, p)
	}
	sort.Strings(inPorts)
	for _, p := range inPorts {
		e.rec.RecordUse(execID, arts[p], p)
	}

	// Fault injection.
	if msg, fail := e.opt.Faults[moduleID]; fail {
		e.rec.EndExecution(execID, provenance.StatusFailed, msg, 0)
		st.mu.Lock()
		st.outcomes[moduleID] = &moduleOutcome{status: provenance.StatusFailed, outputs: map[string]Value{}}
		st.mu.Unlock()
		return
	}

	var cacheKey string
	if e.opt.Cache != nil {
		cacheKey = e.opt.Cache.Key(m.Type, m.Params, vals)
		if outputs, hit := e.opt.Cache.Get(cacheKey); hit {
			e.finishModule(st, execID, moduleID, outputs, provenance.StatusCached, 0)
			return
		}
	}

	if e.opt.Latency != nil {
		if d := e.opt.Latency(m); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
	}

	begin := time.Now()
	ec := &ExecContext{Ctx: ctx, ModuleID: moduleID, Inputs: vals, Params: m.Params}
	outputs, err := fn(ec)
	wall := time.Since(begin).Nanoseconds()
	if ctx.Err() != nil && err == nil {
		err = ctx.Err()
	}
	if err != nil {
		e.rec.EndExecution(execID, provenance.StatusFailed, err.Error(), wall)
		st.mu.Lock()
		st.outcomes[moduleID] = &moduleOutcome{status: provenance.StatusFailed, outputs: map[string]Value{}}
		st.mu.Unlock()
		return
	}
	// Declared output ports must all be produced.
	for _, p := range m.Outputs {
		if _, ok := outputs[p.Name]; !ok {
			e.rec.EndExecution(execID, provenance.StatusFailed,
				fmt.Sprintf("module produced no value on declared output %q", p.Name), wall)
			st.mu.Lock()
			st.outcomes[moduleID] = &moduleOutcome{status: provenance.StatusFailed, outputs: map[string]Value{}}
			st.mu.Unlock()
			return
		}
	}
	if e.opt.Cache != nil {
		e.opt.Cache.Put(cacheKey, outputs)
	}
	e.finishModule(st, execID, moduleID, outputs, provenance.StatusOK, wall)
}

func (e *Engine) finishModule(st *runState, execID, moduleID string, outputs map[string]Value, status provenance.ExecStatus, wall int64) {
	ports := make([]string, 0, len(outputs))
	for p := range outputs {
		ports = append(ports, p)
	}
	sort.Strings(ports)
	genIDs := map[string]string{}
	for _, p := range ports {
		v := outputs[p]
		genIDs[p] = e.rec.RecordGeneration(execID, p, provenance.Artifact{
			Type:        v.Type,
			ContentHash: v.Hash(),
			Size:        v.Size(),
			Preview:     v.Preview(),
		})
	}
	e.rec.EndExecution(execID, status, "", wall)
	st.mu.Lock()
	st.outcomes[moduleID] = &moduleOutcome{status: status, outputs: outputs}
	for p, id := range genIDs {
		st.artifacts[moduleID+"."+p] = id
	}
	st.mu.Unlock()
}
