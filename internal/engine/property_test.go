package engine_test

// Failure-cascade and capture-consistency properties over random layered
// workflows, exercised through the public engine API.

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/workloads"
)

// Property: injecting a fault into one module fails exactly that module
// and skips exactly its transitive dependents; everything else succeeds.
func TestQuickFailureCascade(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		wf := workloads.RandomLayered(seed, 4, 3, 2)
		victim := wf.Modules[int(pick)%len(wf.Modules)].ID
		reg := engine.NewRegistry()
		workloads.RegisterAll(reg)
		e := engine.New(engine.Options{
			Registry: reg,
			Faults:   map[string]string{victim: "chaos"},
		})
		res, err := e.Run(context.Background(), wf, nil)
		if err != nil {
			return false
		}
		if len(res.Failed) != 1 || res.Failed[0] != victim {
			return false
		}
		wantSkipped := map[string]bool{}
		for _, id := range wf.Downstream(victim) {
			wantSkipped[id] = true
		}
		if len(res.Skipped) != len(wantSkipped) {
			return false
		}
		for _, id := range res.Skipped {
			if !wantSkipped[id] {
				return false
			}
		}
		// Every module neither failed nor skipped produced its output.
		bad := map[string]bool{victim: true}
		for _, id := range res.Skipped {
			bad[id] = true
		}
		for _, m := range wf.Modules {
			_, ok := res.Outputs[m.ID+".out"]
			if bad[m.ID] == ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: captured provenance of a random parallel run is always
// internally valid, acyclic, and structurally mirrors the workflow: one
// execution per module, generation events equal declared outputs.
func TestQuickCaptureStructure(t *testing.T) {
	f := func(seed int64, workers uint8) bool {
		wf := workloads.RandomLayered(seed, 4, 4, 2)
		col := provenance.NewCollector()
		reg := engine.NewRegistry()
		workloads.RegisterAll(reg)
		e := engine.New(engine.Options{Registry: reg, Recorder: col,
			Workers: int(workers%8) + 1})
		res, err := e.Run(context.Background(), wf, nil)
		if err != nil {
			return false
		}
		log, err := col.Log(res.RunID)
		if err != nil || log.Validate() != nil {
			return false
		}
		if len(log.Executions) != len(wf.Modules) {
			return false
		}
		cg, err := provenance.BuildCausalGraph(log)
		if err != nil {
			return false
		}
		// Process dependencies mirror workflow connections (dedup'd).
		wantDeps := map[string]bool{}
		for _, c := range wf.Connections {
			a := log.ExecutionForModule(c.SrcModule)
			b := log.ExecutionForModule(c.DstModule)
			wantDeps[a.ID+">"+b.ID] = true
		}
		got := cg.ProcessDependencies()
		if len(got) != len(wantDeps) {
			return false
		}
		for _, pair := range got {
			if !wantDeps[pair[0]+">"+pair[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: identical workflows produce identical output hashes regardless
// of worker count (scheduling does not leak into results).
func TestQuickDeterminismAcrossWorkerCounts(t *testing.T) {
	f := func(seed int64) bool {
		wf := workloads.RandomLayered(seed, 4, 3, 2)
		hashes := map[string]string{}
		for _, workers := range []int{1, 4} {
			reg := engine.NewRegistry()
			workloads.RegisterAll(reg)
			e := engine.New(engine.Options{Registry: reg, Workers: workers})
			res, err := e.Run(context.Background(), wf, nil)
			if err != nil {
				return false
			}
			for key, v := range res.Outputs {
				h := v.Hash()
				if prev, ok := hashes[key]; ok && prev != h {
					return false
				}
				hashes[key] = h
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a shared cache, re-running any prefix-identical workflow
// marks every unchanged module as cached.
func TestQuickCachePrefixReuse(t *testing.T) {
	f := func(seed int64) bool {
		wf := workloads.Chain(6)
		for i := 0; i < 6; i++ {
			if err := wf.SetParam(fmt.Sprintf("s%02d", i), "work", "3"); err != nil {
				return false
			}
		}
		reg := engine.NewRegistry()
		workloads.RegisterAll(reg)
		cache := engine.NewCache()
		e := engine.New(engine.Options{Registry: reg, Cache: cache})
		if _, err := e.Run(context.Background(), wf, nil); err != nil {
			return false
		}
		// Change only the last module's parameter (guaranteed != "3").
		delta := seed % 7
		if delta < 0 {
			delta = -delta
		}
		wf2 := wf.Clone()
		if err := wf2.SetParam("s05", "work", fmt.Sprint(10+delta)); err != nil {
			return false
		}
		res, err := e.Run(context.Background(), wf2, nil)
		if err != nil {
			return false
		}
		// s00..s04 cached; s05 re-executed.
		if len(res.Cached) != 5 {
			return false
		}
		for _, id := range res.Cached {
			if id == "s05" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
