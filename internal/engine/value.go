// Package engine executes scientific workflows under the dataflow model
// (§2.1): the execution order of modules is determined by the flow of data
// through the workflow. The engine is instrumented for provenance capture —
// it emits retrospective provenance through a provenance.Recorder as it
// schedules module executions in parallel.
package engine

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/provenance"
)

// Value is a data product flowing along a workflow connection. Type is the
// dataflow type tag (matching port types); Data holds the payload. Values
// are content-hashed canonically so that identical products are recognized
// across runs (artifact identity, caching, run diffing).
type Value struct {
	Type string
	Data any
}

// Hash returns the canonical content hash of the value.
func (v Value) Hash() string {
	return provenance.HashBytes([]byte(v.Type + "\x00" + canonical(v.Data)))
}

// Size returns the length in bytes of the canonical encoding.
func (v Value) Size() int64 { return int64(len(canonical(v.Data))) }

// Preview returns a short human-readable rendering for provenance records.
func (v Value) Preview() string {
	s := canonical(v.Data)
	if len(s) > 64 {
		s = s[:61] + "..."
	}
	return s
}

// canonical produces a deterministic string encoding of common payload
// shapes; maps are key-sorted, floats use shortest round-trip form, and
// anything unusual falls back to JSON then %#v.
func canonical(data any) string {
	switch d := data.(type) {
	case nil:
		return "nil"
	case string:
		return d
	case []byte:
		return string(d)
	case bool:
		return strconv.FormatBool(d)
	case int:
		return strconv.Itoa(d)
	case int64:
		return strconv.FormatInt(d, 10)
	case uint64:
		return strconv.FormatUint(d, 10)
	case float64:
		if math.IsNaN(d) {
			return "NaN"
		}
		return strconv.FormatFloat(d, 'g', -1, 64)
	case []float64:
		parts := make([]string, len(d))
		for i, f := range d {
			parts[i] = canonical(f)
		}
		return "[" + strings.Join(parts, ",") + "]"
	case []int:
		parts := make([]string, len(d))
		for i, n := range d {
			parts[i] = strconv.Itoa(n)
		}
		return "[" + strings.Join(parts, ",") + "]"
	case []string:
		parts := make([]string, len(d))
		for i, s := range d {
			parts[i] = strconv.Quote(s)
		}
		return "[" + strings.Join(parts, ",") + "]"
	case map[string]string:
		keys := make([]string, 0, len(d))
		for k := range d {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%q:%q", k, d[k])
		}
		b.WriteByte('}')
		return b.String()
	case map[string]float64:
		keys := make([]string, 0, len(d))
		for k := range d {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%q:%s", k, canonical(d[k]))
		}
		b.WriteByte('}')
		return b.String()
	default:
		if enc, err := json.Marshal(d); err == nil {
			return string(enc)
		}
		return fmt.Sprintf("%#v", d)
	}
}
