package engine

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/provenance"
)

// Cache memoizes module executions by (module type, params, input hashes):
// the mechanism behind provenance-enabled re-use of intermediate results in
// exploratory tasks (§2.3 — "flexible re-use of workflows" and parameter
// sweeps re-run only what changed).
type Cache struct {
	mu      sync.RWMutex
	entries map[string]map[string]Value
	hits    int64
	misses  int64
}

// NewCache returns an empty execution cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]map[string]Value)}
}

// Key computes the cache key for an execution signature.
func (c *Cache) Key(moduleType string, params map[string]string, inputs map[string]Value) string {
	var b strings.Builder
	b.WriteString(moduleType)
	b.WriteByte('|')
	pkeys := make([]string, 0, len(params))
	for k := range params {
		pkeys = append(pkeys, k)
	}
	sort.Strings(pkeys)
	for _, k := range pkeys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(params[k])
		b.WriteByte(';')
	}
	b.WriteByte('|')
	ikeys := make([]string, 0, len(inputs))
	for k := range inputs {
		ikeys = append(ikeys, k)
	}
	sort.Strings(ikeys)
	for _, k := range ikeys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(inputs[k].Hash())
		b.WriteByte(';')
	}
	return provenance.HashBytes([]byte(b.String()))
}

// Get returns the memoized outputs for a key, if present.
func (c *Cache) Get(key string) (map[string]Value, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return out, ok
}

// Put memoizes outputs under a key.
func (c *Cache) Put(key string, outputs map[string]Value) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := make(map[string]Value, len(outputs))
	for k, v := range outputs {
		cp[k] = v
	}
	c.entries[key] = cp
}

// Stats returns hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}

// Len returns the number of cached executions.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
