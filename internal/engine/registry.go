package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// ExecContext is what a module implementation receives: its bound inputs,
// parameters, and the ambient context for cancellation.
type ExecContext struct {
	Ctx      context.Context
	ModuleID string
	Inputs   map[string]Value  // keyed by input port name
	Params   map[string]string // bound parameter values
}

// Input returns the value on an input port, or an error naming the port.
func (e *ExecContext) Input(port string) (Value, error) {
	v, ok := e.Inputs[port]
	if !ok {
		return Value{}, fmt.Errorf("module %s: no value on input port %q", e.ModuleID, port)
	}
	return v, nil
}

// Param returns a parameter value, or def when unset.
func (e *ExecContext) Param(key, def string) string {
	if v, ok := e.Params[key]; ok {
		return v
	}
	return def
}

// Func is a module implementation: it maps inputs+params to outputs, keyed
// by output port name.
type Func func(*ExecContext) (map[string]Value, error)

// Registry maps module type names to implementations. It is safe for
// concurrent use; registries are typically populated at startup and shared
// across engines.
type Registry struct {
	mu    sync.RWMutex
	funcs map[string]Func
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{funcs: make(map[string]Func)}
}

// Register binds a module type to an implementation; re-registration
// replaces the previous binding.
func (r *Registry) Register(moduleType string, fn Func) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[moduleType] = fn
}

// Lookup returns the implementation for a module type.
func (r *Registry) Lookup(moduleType string) (Func, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.funcs[moduleType]
	if !ok {
		return nil, fmt.Errorf("engine: no implementation registered for module type %q", moduleType)
	}
	return fn, nil
}

// Types returns the registered module type names, sorted.
func (r *Registry) Types() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.funcs))
	for t := range r.funcs {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
