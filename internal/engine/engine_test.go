package engine

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"testing"

	"repro/internal/provenance"
	"repro/internal/workflow"
)

// testRegistry registers simple arithmetic modules:
//
//	Const:  param "value" -> output "out" (int)
//	Add:    inputs "a","b" -> output "out" = a+b
//	Double: input "in" -> output "out" = 2*in
//	Fail:   always errors
func testRegistry() *Registry {
	r := NewRegistry()
	r.Register("Const", func(ec *ExecContext) (map[string]Value, error) {
		n, err := strconv.Atoi(ec.Param("value", "0"))
		if err != nil {
			return nil, err
		}
		return map[string]Value{"out": {Type: "int", Data: n}}, nil
	})
	r.Register("Add", func(ec *ExecContext) (map[string]Value, error) {
		a, err := ec.Input("a")
		if err != nil {
			return nil, err
		}
		b, err := ec.Input("b")
		if err != nil {
			return nil, err
		}
		return map[string]Value{"out": {Type: "int", Data: a.Data.(int) + b.Data.(int)}}, nil
	})
	r.Register("Double", func(ec *ExecContext) (map[string]Value, error) {
		in, err := ec.Input("in")
		if err != nil {
			return nil, err
		}
		return map[string]Value{"out": {Type: "int", Data: 2 * in.Data.(int)}}, nil
	})
	r.Register("Fail", func(ec *ExecContext) (map[string]Value, error) {
		return nil, errors.New("intentional failure")
	})
	return r
}

// sumWorkflow: c1=3, c2=4 -> add -> double. Result 14.
func sumWorkflow(t *testing.T) *workflow.Workflow {
	t.Helper()
	return workflow.NewBuilder("sum", "sum").
		Module("c1", "Const", workflow.Out("out", "int")).
		Module("c2", "Const", workflow.Out("out", "int")).
		Module("add", "Add", workflow.In("a", "int"), workflow.In("b", "int"), workflow.Out("out", "int")).
		Module("double", "Double", workflow.In("in", "int"), workflow.Out("out", "int")).
		Param("c1", "value", "3").
		Param("c2", "value", "4").
		Connect("c1", "out", "add", "a").
		Connect("c2", "out", "add", "b").
		Connect("add", "out", "double", "in").
		MustBuild()
}

func TestRunComputesValues(t *testing.T) {
	e := New(Options{Registry: testRegistry()})
	res, err := e.Run(context.Background(), sumWorkflow(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != provenance.StatusOK {
		t.Fatalf("status = %s", res.Status)
	}
	v, err := res.Output("double", "out")
	if err != nil {
		t.Fatal(err)
	}
	if v.Data.(int) != 14 {
		t.Fatalf("result = %v, want 14", v.Data)
	}
}

func TestRunCapturesProvenance(t *testing.T) {
	col := provenance.NewCollector()
	e := New(Options{Registry: testRegistry(), Recorder: col, Agent: "tester",
		Environment: map[string]string{"host": "sim-node-1"}})
	wf := sumWorkflow(t)
	res, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	log, err := col.Log(res.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Validate(); err != nil {
		t.Fatal(err)
	}
	if log.Run.WorkflowHash != wf.ContentHash() {
		t.Fatal("run not tied to workflow content hash")
	}
	if log.Run.Agent != "tester" || log.Run.Environment["host"] != "sim-node-1" {
		t.Fatalf("run header = %+v", log.Run)
	}
	if len(log.Executions) != 4 || len(log.Artifacts) != 4 {
		t.Fatalf("%d executions %d artifacts, want 4/4", len(log.Executions), len(log.Artifacts))
	}
	// Causal chain: double's output depends on both consts.
	cg, err := provenance.BuildCausalGraph(log)
	if err != nil {
		t.Fatal(err)
	}
	finalArt := res.Artifacts["double.out"]
	lin := cg.Lineage(finalArt)
	if len(lin) != 7 { // 3 upstream artifacts + 4 executions
		t.Fatalf("lineage size = %d, want 7 (%v)", len(lin), lin)
	}
}

func TestRunExternalInputs(t *testing.T) {
	col := provenance.NewCollector()
	e := New(Options{Registry: testRegistry(), Recorder: col})
	wf := workflow.NewBuilder("ext", "ext").
		Module("double", "Double", workflow.In("in", "int"), workflow.Out("out", "int")).
		MustBuild()
	res, err := e.Run(context.Background(), wf, map[string]Value{
		"double.in": {Type: "int", Data: 21},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Output("double", "out")
	if v.Data.(int) != 42 {
		t.Fatalf("result = %v", v.Data)
	}
	log, _ := col.Log(res.RunID)
	// Raw input artifact exists and has no generator.
	if len(log.Artifacts) != 2 {
		t.Fatalf("artifacts = %d, want 2", len(log.Artifacts))
	}
	var raw *provenance.Artifact
	for _, a := range log.Artifacts {
		if log.GeneratorOf(a.ID) == nil {
			raw = a
		}
	}
	if raw == nil {
		t.Fatal("no raw input artifact recorded")
	}
}

func TestRunMissingInputRejected(t *testing.T) {
	e := New(Options{Registry: testRegistry()})
	wf := workflow.NewBuilder("ext", "ext").
		Module("double", "Double", workflow.In("in", "int"), workflow.Out("out", "int")).
		MustBuild()
	if _, err := e.Run(context.Background(), wf, nil); err == nil {
		t.Fatal("unfed input port accepted")
	}
}

func TestRunMissingImplementationRejected(t *testing.T) {
	e := New(Options{Registry: NewRegistry()})
	if _, err := e.Run(context.Background(), sumWorkflow(t), nil); err == nil {
		t.Fatal("missing module implementation accepted")
	}
}

func TestModuleFailureSkipsDownstream(t *testing.T) {
	col := provenance.NewCollector()
	e := New(Options{Registry: testRegistry(), Recorder: col})
	wf := workflow.NewBuilder("fail", "fail").
		Module("c1", "Const", workflow.Out("out", "int")).
		Module("bad", "Fail", workflow.In("in", "int"), workflow.Out("out", "int")).
		Module("double", "Double", workflow.In("in", "int"), workflow.Out("out", "int")).
		Connect("c1", "out", "bad", "in").
		Connect("bad", "out", "double", "in").
		MustBuild()
	res, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != provenance.StatusFailed {
		t.Fatalf("status = %s, want failed", res.Status)
	}
	if len(res.Failed) != 1 || res.Failed[0] != "bad" {
		t.Fatalf("failed = %v", res.Failed)
	}
	if len(res.Skipped) != 1 || res.Skipped[0] != "double" {
		t.Fatalf("skipped = %v", res.Skipped)
	}
	log, _ := col.Log(res.RunID)
	exec := log.ExecutionForModule("bad")
	if exec.Status != provenance.StatusFailed || exec.Error != "intentional failure" {
		t.Fatalf("bad exec = %+v", exec)
	}
	if log.ExecutionForModule("double").Status != provenance.StatusSkipped {
		t.Fatal("downstream not recorded as skipped")
	}
	// c1 still succeeded.
	if log.ExecutionForModule("c1").Status != provenance.StatusOK {
		t.Fatal("independent module affected by failure")
	}
}

func TestFaultInjection(t *testing.T) {
	e := New(Options{Registry: testRegistry(), Faults: map[string]string{"add": "injected"}})
	res, err := e.Run(context.Background(), sumWorkflow(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 || res.Failed[0] != "add" {
		t.Fatalf("failed = %v", res.Failed)
	}
	if len(res.Skipped) != 1 || res.Skipped[0] != "double" {
		t.Fatalf("skipped = %v", res.Skipped)
	}
}

func TestCacheHitsAcrossRuns(t *testing.T) {
	var calls int64
	r := NewRegistry()
	r.Register("Count", func(ec *ExecContext) (map[string]Value, error) {
		atomic.AddInt64(&calls, 1)
		return map[string]Value{"out": {Type: "int", Data: 1}}, nil
	})
	cache := NewCache()
	e := New(Options{Registry: r, Cache: cache})
	wf := workflow.NewBuilder("c", "c").
		Module("m", "Count", workflow.Out("out", "int")).
		MustBuild()
	for i := 0; i < 3; i++ {
		res, err := e.Run(context.Background(), wf, nil)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && (len(res.Cached) != 1 || res.Cached[0] != "m") {
			t.Fatalf("run %d cached = %v", i, res.Cached)
		}
	}
	if calls != 1 {
		t.Fatalf("module called %d times, want 1", calls)
	}
	hits, misses := cache.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("cache stats = %d/%d", hits, misses)
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	c := NewCache()
	in1 := map[string]Value{"x": {Type: "int", Data: 1}}
	in2 := map[string]Value{"x": {Type: "int", Data: 2}}
	k1 := c.Key("T", map[string]string{"p": "1"}, in1)
	if c.Key("T", map[string]string{"p": "1"}, in1) != k1 {
		t.Fatal("key not deterministic")
	}
	if c.Key("T", map[string]string{"p": "2"}, in1) == k1 {
		t.Fatal("param change not reflected")
	}
	if c.Key("T", map[string]string{"p": "1"}, in2) == k1 {
		t.Fatal("input change not reflected")
	}
	if c.Key("U", map[string]string{"p": "1"}, in1) == k1 {
		t.Fatal("module type not reflected")
	}
}

func TestParallelWideWorkflow(t *testing.T) {
	r := testRegistry()
	b := workflow.NewBuilder("wide", "wide")
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("c%02d", i)
		b.Module(id, "Const", workflow.Out("out", "int")).Param(id, "value", strconv.Itoa(i))
	}
	wf := b.MustBuild()
	col := provenance.NewCollector()
	e := New(Options{Registry: r, Recorder: col, Workers: 8})
	res, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != provenance.StatusOK || len(res.Outputs) != 64 {
		t.Fatalf("status=%s outputs=%d", res.Status, len(res.Outputs))
	}
	log, _ := col.Log(res.RunID)
	if err := log.Validate(); err != nil {
		t.Fatalf("parallel capture produced invalid log: %v", err)
	}
}

func TestDeclaredOutputMissingFails(t *testing.T) {
	r := NewRegistry()
	r.Register("Empty", func(ec *ExecContext) (map[string]Value, error) {
		return map[string]Value{}, nil
	})
	wf := workflow.NewBuilder("e", "e").
		Module("m", "Empty", workflow.Out("out", "int")).
		MustBuild()
	e := New(Options{Registry: r})
	res, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 {
		t.Fatalf("failed = %v, want [m]", res.Failed)
	}
}

func TestValueHashing(t *testing.T) {
	a := Value{Type: "int", Data: 42}
	b := Value{Type: "int", Data: 42}
	c := Value{Type: "int", Data: 43}
	d := Value{Type: "str", Data: 42}
	if a.Hash() != b.Hash() {
		t.Fatal("equal values hash differently")
	}
	if a.Hash() == c.Hash() || a.Hash() == d.Hash() {
		t.Fatal("different values collide")
	}
	m1 := Value{Type: "map", Data: map[string]float64{"a": 1, "b": 2}}
	m2 := Value{Type: "map", Data: map[string]float64{"b": 2, "a": 1}}
	if m1.Hash() != m2.Hash() {
		t.Fatal("map hash not order-independent")
	}
}

func TestValuePreviewTruncates(t *testing.T) {
	long := make([]byte, 200)
	for i := range long {
		long[i] = 'x'
	}
	v := Value{Type: "blob", Data: long}
	if len(v.Preview()) != 64 {
		t.Fatalf("preview length = %d", len(v.Preview()))
	}
	if v.Size() != 200 {
		t.Fatalf("size = %d", v.Size())
	}
}

func TestDeterministicRunsIdenticalHashes(t *testing.T) {
	col := provenance.NewCollector()
	e := New(Options{Registry: testRegistry(), Recorder: col, Workers: 1})
	wf := sumWorkflow(t)
	r1, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	l1, _ := col.Log(r1.RunID)
	l2, _ := col.Log(r2.RunID)
	d := provenance.DiffRuns(l1, l2)
	if !d.SameWorkflow || len(d.OutputChanges) != 0 {
		t.Fatalf("identical runs diff: %+v", d)
	}
}
