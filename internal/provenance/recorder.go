package provenance

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// idCounter makes entity IDs unique across all Collectors in a process, so
// logs captured by independent collectors can coexist in one store.
var idCounter atomic.Uint64

// Recorder is the capture mechanism interface (§2.2): workflow engines are
// instrumented against it and emit retrospective provenance as they run.
// Implementations must be safe for concurrent use — module executions run in
// parallel.
//
// A nil *Collector is a valid no-op Recorder, so engines can be benchmarked
// with capture disabled (experiment E3) without branching at every call
// site.
type Recorder interface {
	// BeginRun opens a run for a workflow. It returns the run ID.
	BeginRun(workflowID, workflowHash, agent string, env map[string]string) string
	// EndRun closes the run with a terminal status.
	EndRun(runID string, status ExecStatus)
	// BeginExecution opens a module execution and returns its ID.
	BeginExecution(runID, moduleID, moduleType string, params map[string]string) string
	// EndExecution closes an execution.
	EndExecution(execID string, status ExecStatus, errMsg string, wallNanos int64)
	// RecordUse records that an execution consumed an artifact on a port.
	RecordUse(execID, artifactID, port string)
	// RecordGeneration registers an artifact and records that the execution
	// produced it on a port. It returns the artifact ID.
	RecordGeneration(execID, port string, art Artifact) string
	// RecordInput registers an artifact that enters the run from outside
	// (raw data); it has no generating execution.
	RecordInput(runID string, art Artifact) string
	// Annotate attaches user-defined provenance to any entity.
	Annotate(subject string, kind EntityKind, key, value, author string)
}

// Collector is the in-memory Recorder: it accumulates complete RunLogs with
// a per-run logical clock. All methods are safe for concurrent use. The
// zero value is not usable; call NewCollector.
type Collector struct {
	mu      sync.Mutex
	runs    map[string]*runState
	byExec  map[string]string // execID -> runID
	history []string          // run IDs in creation order
}

type runState struct {
	log   RunLog
	clock uint64
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{
		runs:   make(map[string]*runState),
		byExec: make(map[string]string),
	}
}

var _ Recorder = (*Collector)(nil)

func (c *Collector) nextID(prefix string) string {
	return fmt.Sprintf("%s-%06d", prefix, idCounter.Add(1))
}

// EnsureIDsAtLeast raises the process-wide entity ID counter so the next
// generated ID uses a number strictly greater than n. Systems opening an
// existing store call this with the store's maximum ID suffix, so a fresh
// process does not re-issue run/exec/art IDs that are already persisted
// (re-putting a run ID is an error, which used to reject the second
// `provctl run` into the same store).
func EnsureIDsAtLeast(n uint64) {
	for {
		cur := idCounter.Load()
		if cur >= n || idCounter.CompareAndSwap(cur, n) {
			return
		}
	}
}

// IDSuffix extracts the numeric suffix of a generated entity ID
// ("run-000007" → 7). It reports false for IDs that were not produced by
// nextID (external or user-chosen names), which never collide with
// generated ones anyway.
func IDSuffix(id string) (uint64, bool) {
	i := strings.LastIndexByte(id, '-')
	if i < 0 || i+1 >= len(id) {
		return 0, false
	}
	n, err := strconv.ParseUint(id[i+1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

func (c *Collector) tick(rs *runState) uint64 {
	rs.clock++
	return rs.clock
}

// BeginRun implements Recorder.
func (c *Collector) BeginRun(workflowID, workflowHash, agent string, env map[string]string) string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID("run")
	rs := &runState{}
	rs.log.Run = Run{
		ID:           id,
		WorkflowID:   workflowID,
		WorkflowHash: workflowHash,
		Agent:        agent,
		Environment:  env,
		Status:       StatusOK,
	}
	rs.log.Run.Start = c.tick(rs)
	rs.log.Events = append(rs.log.Events, Event{Seq: rs.clock, RunID: id, Kind: EventRunStarted})
	c.runs[id] = rs
	c.history = append(c.history, id)
	return id
}

// EndRun implements Recorder.
func (c *Collector) EndRun(runID string, status ExecStatus) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rs, ok := c.runs[runID]
	if !ok {
		return
	}
	rs.log.Run.End = c.tick(rs)
	rs.log.Run.Status = status
	rs.log.Events = append(rs.log.Events, Event{Seq: rs.clock, RunID: runID, Kind: EventRunEnded})
}

// BeginExecution implements Recorder.
func (c *Collector) BeginExecution(runID, moduleID, moduleType string, params map[string]string) string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rs, ok := c.runs[runID]
	if !ok {
		return ""
	}
	id := c.nextID("exec")
	exec := &Execution{
		ID:         id,
		RunID:      runID,
		ModuleID:   moduleID,
		ModuleType: moduleType,
		Params:     params,
		Start:      c.tick(rs),
		Status:     StatusOK,
	}
	rs.log.Executions = append(rs.log.Executions, exec)
	rs.log.Events = append(rs.log.Events, Event{Seq: rs.clock, RunID: runID, Kind: EventExecutionStarted, ExecutionID: id})
	c.byExec[id] = runID
	return id
}

// EndExecution implements Recorder.
func (c *Collector) EndExecution(execID string, status ExecStatus, errMsg string, wallNanos int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rs := c.runs[c.byExec[execID]]
	if rs == nil {
		return
	}
	exec := rs.log.Execution(execID)
	if exec == nil {
		return
	}
	exec.End = c.tick(rs)
	exec.Status = status
	exec.Error = errMsg
	exec.WallNanos = wallNanos
	rs.log.Events = append(rs.log.Events, Event{Seq: rs.clock, RunID: exec.RunID, Kind: EventExecutionEnded, ExecutionID: execID})
}

// RecordUse implements Recorder.
func (c *Collector) RecordUse(execID, artifactID, port string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rs := c.runs[c.byExec[execID]]
	if rs == nil {
		return
	}
	rs.log.Events = append(rs.log.Events, Event{
		Seq: c.tick(rs), RunID: rs.log.Run.ID,
		Kind: EventArtifactUsed, ExecutionID: execID, ArtifactID: artifactID, Port: port,
	})
}

// RecordGeneration implements Recorder.
func (c *Collector) RecordGeneration(execID, port string, art Artifact) string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rs := c.runs[c.byExec[execID]]
	if rs == nil {
		return ""
	}
	if art.ID == "" {
		art.ID = c.nextID("art")
	}
	art.RunID = rs.log.Run.ID
	cp := art
	rs.log.Artifacts = append(rs.log.Artifacts, &cp)
	rs.log.Events = append(rs.log.Events, Event{
		Seq: c.tick(rs), RunID: rs.log.Run.ID,
		Kind: EventArtifactGen, ExecutionID: execID, ArtifactID: art.ID, Port: port,
	})
	return art.ID
}

// RecordInput implements Recorder.
func (c *Collector) RecordInput(runID string, art Artifact) string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rs, ok := c.runs[runID]
	if !ok {
		return ""
	}
	if art.ID == "" {
		art.ID = c.nextID("art")
	}
	art.RunID = runID
	cp := art
	rs.log.Artifacts = append(rs.log.Artifacts, &cp)
	return art.ID
}

// Annotate implements Recorder. The subject may be any entity ID; kind
// records what it identifies.
func (c *Collector) Annotate(subject string, kind EntityKind, key, value, author string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Attach to the run owning the subject if resolvable; otherwise to the
	// most recent run.
	var rs *runState
	if runID, ok := c.byExec[subject]; ok {
		rs = c.runs[runID]
	} else if r, ok := c.runs[subject]; ok {
		rs = r
	} else {
		for _, s := range c.runs {
			for _, a := range s.log.Artifacts {
				if a.ID == subject {
					rs = s
					break
				}
			}
			if rs != nil {
				break
			}
		}
	}
	if rs == nil {
		if len(c.history) == 0 {
			return
		}
		rs = c.runs[c.history[len(c.history)-1]]
	}
	ann := Annotation{Subject: subject, Kind: kind, Key: key, Value: value, Author: author, Seq: c.tick(rs)}
	rs.log.Annotations = append(rs.log.Annotations, ann)
	rs.log.Events = append(rs.log.Events, Event{
		Seq: rs.clock, RunID: rs.log.Run.ID,
		Kind: EventAnnotation, Subject: subject, Key: key, Value: value,
	})
}

// Log returns a deep copy of the RunLog for a run, or an error if unknown.
func (c *Collector) Log(runID string) (*RunLog, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rs, ok := c.runs[runID]
	if !ok {
		return nil, fmt.Errorf("provenance: unknown run %q", runID)
	}
	return cloneLog(&rs.log), nil
}

// Runs returns the IDs of all recorded runs in creation order.
func (c *Collector) Runs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.history...)
}

// Logs returns deep copies of all run logs in creation order.
func (c *Collector) Logs() []*RunLog {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*RunLog, 0, len(c.history))
	for _, id := range c.history {
		out = append(out, cloneLog(&c.runs[id].log))
	}
	return out
}

func cloneLog(l *RunLog) *RunLog {
	cp := &RunLog{Run: l.Run}
	cp.Run.Environment = copyStrMap(l.Run.Environment)
	cp.Run.Annotations = copyStrMap(l.Run.Annotations)
	cp.Executions = make([]*Execution, len(l.Executions))
	for i, e := range l.Executions {
		ec := *e
		ec.Params = copyStrMap(e.Params)
		cp.Executions[i] = &ec
	}
	cp.Artifacts = make([]*Artifact, len(l.Artifacts))
	for i, a := range l.Artifacts {
		ac := *a
		ac.Annotations = copyStrMap(a.Annotations)
		cp.Artifacts[i] = &ac
	}
	cp.Events = append([]Event(nil), l.Events...)
	cp.Annotations = append([]Annotation(nil), l.Annotations...)
	return cp
}

func copyStrMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// NopRecorder discards everything: the capture-disabled baseline.
type NopRecorder struct{}

var _ Recorder = NopRecorder{}

// BeginRun implements Recorder.
func (NopRecorder) BeginRun(string, string, string, map[string]string) string { return "" }

// EndRun implements Recorder.
func (NopRecorder) EndRun(string, ExecStatus) {}

// BeginExecution implements Recorder.
func (NopRecorder) BeginExecution(string, string, string, map[string]string) string { return "" }

// EndExecution implements Recorder.
func (NopRecorder) EndExecution(string, ExecStatus, string, int64) {}

// RecordUse implements Recorder.
func (NopRecorder) RecordUse(string, string, string) {}

// RecordGeneration implements Recorder.
func (NopRecorder) RecordGeneration(string, string, Artifact) string { return "" }

// RecordInput implements Recorder.
func (NopRecorder) RecordInput(string, Artifact) string { return "" }

// Annotate implements Recorder.
func (NopRecorder) Annotate(string, EntityKind, string, string, string) {}
