package provenance

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// CausalGraph is the dependency graph derived from retrospective provenance:
// a bipartite DAG whose nodes are artifacts and executions, with edges
//
//	artifact  --used-->        execution   (the execution consumed it)
//	execution --generated-->   artifact    (the execution produced it)
//
// Edges point in dataflow direction, so Ancestors answers "what caused
// this?" and Reachable answers "what depends on this?".
type CausalGraph struct {
	g   *graph.Graph
	log *RunLog
}

// Edge labels in the causal graph.
const (
	EdgeUsed      = "used"
	EdgeGenerated = "generated"
)

// BuildCausalGraph derives the causal graph from a run log. Inference from
// retrospective provenance (§2.2): causality is exactly the use/generate
// event structure.
func BuildCausalGraph(l *RunLog) (*CausalGraph, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	g := graph.New()
	for _, a := range l.Artifacts {
		if err := g.AddNode(graph.Node{
			ID: graph.NodeID(a.ID), Label: a.Type, Kind: string(KindArtifact),
			Attrs: map[string]string{"hash": a.ContentHash, "type": a.Type},
		}); err != nil {
			return nil, err
		}
	}
	for _, e := range l.Executions {
		if err := g.AddNode(graph.Node{
			ID: graph.NodeID(e.ID), Label: e.ModuleID, Kind: string(KindExecution),
			Attrs: map[string]string{"module": e.ModuleID, "moduleType": e.ModuleType, "status": string(e.Status)},
		}); err != nil {
			return nil, err
		}
	}
	for _, ev := range l.Events {
		switch ev.Kind {
		case EventArtifactUsed:
			if err := g.AddEdge(graph.Edge{
				Src: graph.NodeID(ev.ArtifactID), Dst: graph.NodeID(ev.ExecutionID),
				Label: EdgeUsed, Attrs: map[string]string{"port": ev.Port},
			}); err != nil {
				return nil, err
			}
		case EventArtifactGen:
			if err := g.AddEdge(graph.Edge{
				Src: graph.NodeID(ev.ExecutionID), Dst: graph.NodeID(ev.ArtifactID),
				Label: EdgeGenerated, Attrs: map[string]string{"port": ev.Port},
			}); err != nil {
				return nil, err
			}
		}
	}
	if !g.IsDAG() {
		return nil, fmt.Errorf("provenance: causal graph for run %s is cyclic", l.Run.ID)
	}
	return &CausalGraph{g: g, log: l}, nil
}

// Graph exposes the underlying generic graph (read-mostly; callers must not
// mutate it).
func (c *CausalGraph) Graph() *graph.Graph { return c.g }

// Log returns the run log the graph was derived from.
func (c *CausalGraph) Log() *RunLog { return c.log }

// Lineage returns every artifact and execution that the given entity
// causally depends on, sorted. This is the classical "audit trail" query:
// the full derivation history of a data product.
func (c *CausalGraph) Lineage(entityID string) []string {
	return sortedNodeIDs(c.g.Ancestors(graph.NodeID(entityID)))
}

// Dependents returns every entity that causally depends on the given one,
// sorted. This implements the invalidation scenario of §2.2: when the CT
// scanner behind an input file is found defective, Dependents lists all
// results that must be re-examined.
func (c *CausalGraph) Dependents(entityID string) []string {
	return sortedNodeIDs(c.g.Reachable(graph.NodeID(entityID)))
}

// InvalidatedArtifacts returns only the artifacts downstream of the given
// entity, sorted: the concrete data products to recall.
func (c *CausalGraph) InvalidatedArtifacts(entityID string) []string {
	var out []string
	for id := range c.g.Reachable(graph.NodeID(entityID)) {
		if n := c.g.Node(id); n != nil && n.Kind == string(KindArtifact) {
			out = append(out, string(id))
		}
	}
	sort.Strings(out)
	return out
}

// DataDependencies returns the artifact→artifact dependency pairs obtained
// by collapsing executions out of the causal graph: artifact B depends on
// artifact A when some execution used A and generated B.
func (c *CausalGraph) DataDependencies() [][2]string {
	var out [][2]string
	for _, e := range c.log.Executions {
		used := c.log.ArtifactsUsedBy(e.ID)
		gen := c.log.ArtifactsGeneratedBy(e.ID)
		for _, u := range used {
			for _, g := range gen {
				out = append(out, [2]string{u.ID, g.ID})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// ProcessDependencies returns execution→execution dependency pairs:
// execution Q depends on P when Q used an artifact P generated.
func (c *CausalGraph) ProcessDependencies() [][2]string {
	var out [][2]string
	seen := map[[2]string]bool{}
	for _, a := range c.log.Artifacts {
		gen := c.log.GeneratorOf(a.ID)
		if gen == nil {
			continue
		}
		for _, consumer := range c.log.ConsumersOf(a.ID) {
			pair := [2]string{gen.ID, consumer.ID}
			if !seen[pair] {
				seen[pair] = true
				out = append(out, pair)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// DerivedFromSameRawData reports whether two artifacts share at least one
// raw-data ancestor (an artifact with no generating execution) — one of the
// motivating questions in §1. It returns the shared raw inputs, sorted.
func (c *CausalGraph) DerivedFromSameRawData(artifactA, artifactB string) []string {
	rawA := c.rawAncestors(artifactA)
	rawB := c.rawAncestors(artifactB)
	var shared []string
	for id := range rawA {
		if rawB[id] {
			shared = append(shared, id)
		}
	}
	sort.Strings(shared)
	return shared
}

func (c *CausalGraph) rawAncestors(artifactID string) map[string]bool {
	out := map[string]bool{}
	anc := c.g.Ancestors(graph.NodeID(artifactID))
	anc[graph.NodeID(artifactID)] = true
	for id := range anc {
		n := c.g.Node(id)
		if n != nil && n.Kind == string(KindArtifact) && c.g.InDegree(id) == 0 {
			out[string(id)] = true
		}
	}
	return out
}

// Recipe is the reproduction plan for an artifact: the module executions
// (in causal order) and raw inputs needed to regenerate it — the basis of
// result reproducibility (§2.3).
type Recipe struct {
	Target     string   // artifact to reproduce
	ModuleIDs  []string // workflow modules to re-execute, in causal order
	RawInputs  []string // artifact IDs that must be supplied
	Executions []string // execution IDs, in causal order
}

// ReproductionRecipe computes the minimal recipe for regenerating an
// artifact from the run's raw inputs.
func (c *CausalGraph) ReproductionRecipe(artifactID string) (*Recipe, error) {
	if !c.g.HasNode(graph.NodeID(artifactID)) {
		return nil, fmt.Errorf("provenance: unknown artifact %q", artifactID)
	}
	anc := c.g.Ancestors(graph.NodeID(artifactID))
	keep := make([]graph.NodeID, 0, len(anc)+1)
	for id := range anc {
		keep = append(keep, id)
	}
	keep = append(keep, graph.NodeID(artifactID))
	sub := c.g.Subgraph(keep)
	order, err := sub.TopoSort()
	if err != nil {
		return nil, err
	}
	r := &Recipe{Target: artifactID}
	for _, id := range order {
		n := sub.Node(id)
		switch n.Kind {
		case string(KindExecution):
			r.Executions = append(r.Executions, string(id))
			r.ModuleIDs = append(r.ModuleIDs, n.Attrs["module"])
		case string(KindArtifact):
			if sub.InDegree(id) == 0 && string(id) != artifactID {
				r.RawInputs = append(r.RawInputs, string(id))
			}
		}
	}
	sort.Strings(r.RawInputs)
	return r, nil
}

func sortedNodeIDs(set map[graph.NodeID]bool) []string {
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, string(id))
	}
	sort.Strings(out)
	return out
}

// RunDiff describes how two runs of (possibly different versions of) a
// workflow differ: the foundation for "explaining differences in data
// products" (§1, §2.3).
type RunDiff struct {
	OnlyInA        []string             // module IDs executed only in run A
	OnlyInB        []string             // module IDs executed only in run B
	ParamChanges   map[string][2]string // moduleID.key -> [valueA, valueB]
	OutputChanges  []string             // module IDs whose output hashes differ
	StatusChanges  map[string][2]ExecStatus
	SameWorkflow   bool
	WorkflowHashes [2]string
}

// DiffRuns compares two run logs module-by-module.
func DiffRuns(a, b *RunLog) *RunDiff {
	d := &RunDiff{
		ParamChanges:   map[string][2]string{},
		StatusChanges:  map[string][2]ExecStatus{},
		SameWorkflow:   a.Run.WorkflowHash == b.Run.WorkflowHash,
		WorkflowHashes: [2]string{a.Run.WorkflowHash, b.Run.WorkflowHash},
	}
	modsA := map[string]*Execution{}
	for _, e := range a.Executions {
		modsA[e.ModuleID] = e
	}
	modsB := map[string]*Execution{}
	for _, e := range b.Executions {
		modsB[e.ModuleID] = e
	}
	for id := range modsA {
		if _, ok := modsB[id]; !ok {
			d.OnlyInA = append(d.OnlyInA, id)
		}
	}
	for id := range modsB {
		if _, ok := modsA[id]; !ok {
			d.OnlyInB = append(d.OnlyInB, id)
		}
	}
	sort.Strings(d.OnlyInA)
	sort.Strings(d.OnlyInB)
	for id, ea := range modsA {
		eb, ok := modsB[id]
		if !ok {
			continue
		}
		for k, va := range ea.Params {
			if vb, ok := eb.Params[k]; ok && va != vb {
				d.ParamChanges[id+"."+k] = [2]string{va, vb}
			}
		}
		for k, vb := range eb.Params {
			if _, ok := ea.Params[k]; !ok {
				d.ParamChanges[id+"."+k] = [2]string{"", vb}
			}
		}
		if ea.Status != eb.Status {
			d.StatusChanges[id] = [2]ExecStatus{ea.Status, eb.Status}
		}
		if outputHashes(a, ea.ID) != outputHashes(b, eb.ID) {
			d.OutputChanges = append(d.OutputChanges, id)
		}
	}
	sort.Strings(d.OutputChanges)
	return d
}

func outputHashes(l *RunLog, execID string) string {
	arts := l.ArtifactsGeneratedBy(execID)
	hashes := make([]string, len(arts))
	for i, a := range arts {
		hashes[i] = a.ContentHash
	}
	sort.Strings(hashes)
	out := ""
	for _, h := range hashes {
		out += h + ";"
	}
	return out
}

// ExplainOutputChange walks the causal structure of the diff and reports,
// for each changed output module, the upstream parameter changes that can
// account for it. It answers "why does my result differ between these two
// runs?".
func ExplainOutputChange(a, b *RunLog, d *RunDiff, moduleID string, upstream func(string) []string) []string {
	changedParams := map[string]bool{}
	for key := range d.ParamChanges {
		changedParams[key] = true
	}
	var causes []string
	cands := append([]string{moduleID}, upstream(moduleID)...)
	for _, mod := range cands {
		for key := range changedParams {
			if len(key) > len(mod) && key[:len(mod)] == mod && key[len(mod)] == '.' {
				causes = append(causes, fmt.Sprintf("%s: %q -> %q", key, d.ParamChanges[key][0], d.ParamChanges[key][1]))
			}
		}
	}
	sort.Strings(causes)
	return causes
}
