// Package provenance implements the core of the paper: capture, modeling and
// querying of provenance for scientific workflows (Davidson & Freire,
// SIGMOD'08 §2.2).
//
// Two forms of provenance are represented:
//
//   - Prospective provenance is the workflow specification itself (package
//     workflow); runs reference it by content hash.
//   - Retrospective provenance is the detailed log of an execution: which
//     module executions ran, which artifacts they used and generated, in what
//     environment, plus user-defined annotations.
//
// From a run log the package derives the causal graph — the dependency
// relationships among data products and the processes that generated them —
// and answers the canonical questions the paper opens with: who created this
// data product and with what process, were two products derived from the
// same raw data, and which results must be invalidated when an input (the
// defective CT scanner of §2.2) is recalled.
package provenance

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
)

// EntityKind distinguishes node types in provenance records.
type EntityKind string

// Entity kinds.
const (
	KindArtifact  EntityKind = "artifact"
	KindExecution EntityKind = "execution"
	KindRun       EntityKind = "run"
	KindAgent     EntityKind = "agent"
)

// EventKind enumerates the retrospective-provenance event types a capture
// mechanism emits.
type EventKind string

// Event kinds, in the order a typical module execution emits them.
const (
	EventRunStarted       EventKind = "runStarted"
	EventRunEnded         EventKind = "runEnded"
	EventExecutionStarted EventKind = "executionStarted"
	EventExecutionEnded   EventKind = "executionEnded"
	EventArtifactUsed     EventKind = "artifactUsed"
	EventArtifactGen      EventKind = "artifactGenerated"
	EventAnnotation       EventKind = "annotation"
)

// ExecStatus is the terminal status of a module execution or run.
type ExecStatus string

// Execution statuses.
const (
	StatusOK      ExecStatus = "ok"
	StatusFailed  ExecStatus = "failed"
	StatusSkipped ExecStatus = "skipped"
	StatusCached  ExecStatus = "cached"
)

// Artifact is a data product: an input, intermediate or final result of a
// run. ContentHash identifies equal contents across runs; Preview holds a
// short human-readable rendering of the value.
type Artifact struct {
	ID          string            `json:"id"`
	Type        string            `json:"type"`
	ContentHash string            `json:"contentHash"`
	Size        int64             `json:"size"`
	Preview     string            `json:"preview,omitempty"`
	RunID       string            `json:"runId"`
	Annotations map[string]string `json:"annotations,omitempty"`
}

// Execution is one module execution inside a run (a "process" in the
// paper's terms; OPM's Process). Start/End are logical timestamps (event
// sequence numbers) so ordering is deterministic and machine-independent;
// WallNanos records simulated or measured duration for performance queries.
type Execution struct {
	ID         string            `json:"id"`
	RunID      string            `json:"runId"`
	ModuleID   string            `json:"moduleId"`
	ModuleType string            `json:"moduleType"`
	Params     map[string]string `json:"params,omitempty"`
	Start      uint64            `json:"start"`
	End        uint64            `json:"end"`
	WallNanos  int64             `json:"wallNanos"`
	Status     ExecStatus        `json:"status"`
	Error      string            `json:"error,omitempty"`
	Machine    string            `json:"machine,omitempty"`
}

// Run is one execution of a workflow: the unit of retrospective provenance.
// WorkflowHash ties the run to the exact prospective provenance (workflow
// content hash) it executed; Environment captures the execution context the
// paper requires retrospective provenance to include.
type Run struct {
	ID           string            `json:"id"`
	WorkflowID   string            `json:"workflowId"`
	WorkflowHash string            `json:"workflowHash"`
	Agent        string            `json:"agent"`
	Start        uint64            `json:"start"`
	End          uint64            `json:"end"`
	Status       ExecStatus        `json:"status"`
	Environment  map[string]string `json:"environment,omitempty"`
	Annotations  map[string]string `json:"annotations,omitempty"`
}

// Event is one record in the retrospective provenance log. The sequence
// number is a per-run logical clock; the pair (RunID, Seq) is unique.
type Event struct {
	Seq         uint64    `json:"seq"`
	RunID       string    `json:"runId"`
	Kind        EventKind `json:"kind"`
	ExecutionID string    `json:"executionId,omitempty"`
	ArtifactID  string    `json:"artifactId,omitempty"`
	Port        string    `json:"port,omitempty"`
	Subject     string    `json:"subject,omitempty"` // annotation target entity ID
	Key         string    `json:"key,omitempty"`
	Value       string    `json:"value,omitempty"`
}

// Annotation is user-defined provenance attached to any entity (module,
// artifact, execution, run) at any granularity — the yellow boxes of
// Figure 1.
type Annotation struct {
	Subject string `json:"subject"`
	Kind    EntityKind
	Key     string `json:"key"`
	Value   string `json:"value"`
	Author  string `json:"author,omitempty"`
	Seq     uint64 `json:"seq"`
}

// RunLog is the complete retrospective provenance of one run: the run
// header, every execution, every artifact, the raw event stream, and all
// annotations. It is what a Recorder produces and what stores persist.
type RunLog struct {
	Run         Run          `json:"run"`
	Executions  []*Execution `json:"executions"`
	Artifacts   []*Artifact  `json:"artifacts"`
	Events      []Event      `json:"events"`
	Annotations []Annotation `json:"annotations"`
}

// Execution returns the execution with the given ID, or nil.
func (l *RunLog) Execution(id string) *Execution {
	for _, e := range l.Executions {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// Artifact returns the artifact with the given ID, or nil.
func (l *RunLog) Artifact(id string) *Artifact {
	for _, a := range l.Artifacts {
		if a.ID == id {
			return a
		}
	}
	return nil
}

// ExecutionForModule returns the first execution of the given module ID, or
// nil. Module executions are unique per run in the dataflow model.
func (l *RunLog) ExecutionForModule(moduleID string) *Execution {
	for _, e := range l.Executions {
		if e.ModuleID == moduleID {
			return e
		}
	}
	return nil
}

// ArtifactsGeneratedBy returns the artifacts generated by an execution,
// sorted by ID.
func (l *RunLog) ArtifactsGeneratedBy(execID string) []*Artifact {
	var ids []string
	for _, ev := range l.Events {
		if ev.Kind == EventArtifactGen && ev.ExecutionID == execID {
			ids = append(ids, ev.ArtifactID)
		}
	}
	sort.Strings(ids)
	out := make([]*Artifact, 0, len(ids))
	for _, id := range ids {
		if a := l.Artifact(id); a != nil {
			out = append(out, a)
		}
	}
	return out
}

// ArtifactsUsedBy returns the artifacts used by an execution, sorted by ID.
func (l *RunLog) ArtifactsUsedBy(execID string) []*Artifact {
	var ids []string
	for _, ev := range l.Events {
		if ev.Kind == EventArtifactUsed && ev.ExecutionID == execID {
			ids = append(ids, ev.ArtifactID)
		}
	}
	sort.Strings(ids)
	out := make([]*Artifact, 0, len(ids))
	for _, id := range ids {
		if a := l.Artifact(id); a != nil {
			out = append(out, a)
		}
	}
	return out
}

// GeneratorOf returns the execution that generated the artifact, or nil.
// In the dataflow model every artifact has at most one generator.
func (l *RunLog) GeneratorOf(artifactID string) *Execution {
	for _, ev := range l.Events {
		if ev.Kind == EventArtifactGen && ev.ArtifactID == artifactID {
			return l.Execution(ev.ExecutionID)
		}
	}
	return nil
}

// ConsumersOf returns the executions that used the artifact, sorted by ID.
func (l *RunLog) ConsumersOf(artifactID string) []*Execution {
	var ids []string
	seen := map[string]bool{}
	for _, ev := range l.Events {
		if ev.Kind == EventArtifactUsed && ev.ArtifactID == artifactID && !seen[ev.ExecutionID] {
			seen[ev.ExecutionID] = true
			ids = append(ids, ev.ExecutionID)
		}
	}
	sort.Strings(ids)
	out := make([]*Execution, 0, len(ids))
	for _, id := range ids {
		if e := l.Execution(id); e != nil {
			out = append(out, e)
		}
	}
	return out
}

// AnnotationsFor returns the annotations attached to the given subject.
func (l *RunLog) AnnotationsFor(subject string) []Annotation {
	var out []Annotation
	for _, a := range l.Annotations {
		if a.Subject == subject {
			out = append(out, a)
		}
	}
	return out
}

// Validate checks internal consistency of the log: events reference known
// executions/artifacts, each artifact has at most one generator, and
// execution intervals nest within the run.
func (l *RunLog) Validate() error {
	execs := map[string]bool{}
	for _, e := range l.Executions {
		if execs[e.ID] {
			return fmt.Errorf("provenance: run %s duplicate execution %q", l.Run.ID, e.ID)
		}
		execs[e.ID] = true
		if e.End < e.Start {
			return fmt.Errorf("provenance: execution %q ends before it starts", e.ID)
		}
	}
	arts := map[string]bool{}
	for _, a := range l.Artifacts {
		if arts[a.ID] {
			return fmt.Errorf("provenance: run %s duplicate artifact %q", l.Run.ID, a.ID)
		}
		arts[a.ID] = true
	}
	gen := map[string]string{}
	var lastSeq uint64
	for i, ev := range l.Events {
		if i > 0 && ev.Seq <= lastSeq {
			return fmt.Errorf("provenance: run %s event sequence not strictly increasing at %d", l.Run.ID, ev.Seq)
		}
		lastSeq = ev.Seq
		switch ev.Kind {
		case EventArtifactUsed, EventArtifactGen:
			if !execs[ev.ExecutionID] {
				return fmt.Errorf("provenance: event %d references unknown execution %q", ev.Seq, ev.ExecutionID)
			}
			if !arts[ev.ArtifactID] {
				return fmt.Errorf("provenance: event %d references unknown artifact %q", ev.Seq, ev.ArtifactID)
			}
			if ev.Kind == EventArtifactGen {
				if prev, ok := gen[ev.ArtifactID]; ok && prev != ev.ExecutionID {
					return fmt.Errorf("provenance: artifact %q generated by both %q and %q", ev.ArtifactID, prev, ev.ExecutionID)
				}
				gen[ev.ArtifactID] = ev.ExecutionID
			}
		case EventExecutionStarted, EventExecutionEnded:
			if !execs[ev.ExecutionID] {
				return fmt.Errorf("provenance: event %d references unknown execution %q", ev.Seq, ev.ExecutionID)
			}
		}
	}
	return nil
}

// HashBytes returns the canonical hex SHA-256 content hash used for
// artifact identity.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
