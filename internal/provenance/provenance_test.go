package provenance

import (
	"strings"
	"sync"
	"testing"
)

// recordFigure1 hand-records the Figure 1 run: reader generates the grid
// artifact from raw file input; histogram and contour+render consume it.
// Returns the collector, run ID and a name→ID map for entities.
func recordFigure1(t *testing.T) (*Collector, string, map[string]string) {
	t.Helper()
	c := NewCollector()
	ids := map[string]string{}
	run := c.BeginRun("fig1", "hash-fig1", "juliana", map[string]string{"os": "linux"})

	ids["raw"] = c.RecordInput(run, Artifact{Type: "file", ContentHash: HashBytes([]byte("head.120.vtk"))})

	reader := c.BeginExecution(run, "reader", "FileReader", map[string]string{"file": "head.120.vtk"})
	c.RecordUse(reader, ids["raw"], "file")
	ids["grid"] = c.RecordGeneration(reader, "data", Artifact{Type: "grid", ContentHash: HashBytes([]byte("grid-data"))})
	c.EndExecution(reader, StatusOK, "", 1000)

	hist := c.BeginExecution(run, "histogram", "Histogram", nil)
	c.RecordUse(hist, ids["grid"], "data")
	ids["plot"] = c.RecordGeneration(hist, "plot", Artifact{Type: "image", ContentHash: HashBytes([]byte("head-hist.png"))})
	c.EndExecution(hist, StatusOK, "", 500)

	contour := c.BeginExecution(run, "contour", "Contour", map[string]string{"isovalue": "57"})
	c.RecordUse(contour, ids["grid"], "data")
	ids["surface"] = c.RecordGeneration(contour, "surface", Artifact{Type: "mesh", ContentHash: HashBytes([]byte("mesh"))})
	c.EndExecution(contour, StatusOK, "", 2000)

	render := c.BeginExecution(run, "render", "Render", nil)
	c.RecordUse(render, ids["surface"], "surface")
	ids["image"] = c.RecordGeneration(render, "image", Artifact{Type: "image", ContentHash: HashBytes([]byte("head-iso.png"))})
	c.EndExecution(render, StatusOK, "", 1500)

	c.Annotate(ids["image"], KindArtifact, "note", "good isovalue for bone", "juliana")
	c.EndRun(run, StatusOK)

	ids["reader"], ids["histogram"], ids["contour"], ids["render"] = reader, hist, contour, render
	return c, run, ids
}

func TestCollectorProducesValidLog(t *testing.T) {
	c, run, _ := recordFigure1(t)
	log, err := c.Log(run)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(log.Executions) != 4 {
		t.Fatalf("executions = %d, want 4", len(log.Executions))
	}
	if len(log.Artifacts) != 5 { // raw + grid + plot + surface + image
		t.Fatalf("artifacts = %d, want 5", len(log.Artifacts))
	}
	if log.Run.Status != StatusOK || log.Run.End <= log.Run.Start {
		t.Fatalf("run header wrong: %+v", log.Run)
	}
}

func TestLogDeepCopy(t *testing.T) {
	c, run, _ := recordFigure1(t)
	a, _ := c.Log(run)
	b, _ := c.Log(run)
	a.Executions[0].Params["file"] = "mutated"
	if b.Executions[0].Params["file"] == "mutated" {
		t.Fatal("Log returns shared state")
	}
}

func TestGeneratorAndConsumers(t *testing.T) {
	c, run, ids := recordFigure1(t)
	log, _ := c.Log(run)
	gen := log.GeneratorOf(ids["grid"])
	if gen == nil || gen.ModuleID != "reader" {
		t.Fatalf("GeneratorOf(grid) = %+v", gen)
	}
	consumers := log.ConsumersOf(ids["grid"])
	if len(consumers) != 2 {
		t.Fatalf("ConsumersOf(grid) = %d, want 2", len(consumers))
	}
	if log.GeneratorOf(ids["raw"]) != nil {
		t.Fatal("raw input has a generator")
	}
}

func TestAnnotationsRecorded(t *testing.T) {
	c, run, ids := recordFigure1(t)
	log, _ := c.Log(run)
	anns := log.AnnotationsFor(ids["image"])
	if len(anns) != 1 || anns[0].Key != "note" || anns[0].Author != "juliana" {
		t.Fatalf("annotations = %+v", anns)
	}
	// Annotation also appears as an event.
	found := false
	for _, ev := range log.Events {
		if ev.Kind == EventAnnotation && ev.Subject == ids["image"] {
			found = true
		}
	}
	if !found {
		t.Fatal("annotation missing from event stream")
	}
}

func TestCausalGraphStructure(t *testing.T) {
	c, run, _ := recordFigure1(t)
	log, _ := c.Log(run)
	cg, err := BuildCausalGraph(log)
	if err != nil {
		t.Fatal(err)
	}
	g := cg.Graph()
	if g.NumNodes() != 9 { // 5 artifacts + 4 executions
		t.Fatalf("nodes = %d, want 9", g.NumNodes())
	}
	// 4 used edges (reader←raw, histogram←grid, contour←grid, render←surface)
	// + 4 generated edges (grid, plot, surface, image); raw has no generator.
	if got := g.NumEdges(); got != 8 {
		t.Fatalf("edges = %d, want 8", got)
	}
}

func TestLineage(t *testing.T) {
	c, run, ids := recordFigure1(t)
	log, _ := c.Log(run)
	cg, _ := BuildCausalGraph(log)
	lin := cg.Lineage(ids["image"])
	// image <- render <- surface <- contour <- grid <- reader <- raw
	want := map[string]bool{
		ids["render"]: true, ids["surface"]: true, ids["contour"]: true,
		ids["grid"]: true, ids["reader"]: true, ids["raw"]: true,
	}
	if len(lin) != len(want) {
		t.Fatalf("lineage = %v", lin)
	}
	for _, id := range lin {
		if !want[id] {
			t.Fatalf("unexpected lineage member %q", id)
		}
	}
	// The histogram branch must NOT be in the image's lineage.
	for _, id := range lin {
		if id == ids["plot"] || id == ids["histogram"] {
			t.Fatal("histogram branch leaked into isosurface lineage")
		}
	}
}

func TestInvalidation(t *testing.T) {
	c, run, ids := recordFigure1(t)
	log, _ := c.Log(run)
	cg, _ := BuildCausalGraph(log)
	// CT scanner defective: invalidate everything derived from raw input.
	inv := cg.InvalidatedArtifacts(ids["raw"])
	if len(inv) != 4 {
		t.Fatalf("invalidated = %v, want 4 artifacts", inv)
	}
	deps := cg.Dependents(ids["surface"])
	want := map[string]bool{ids["render"]: true, ids["image"]: true}
	if len(deps) != len(want) {
		t.Fatalf("dependents(surface) = %v", deps)
	}
}

func TestDataAndProcessDependencies(t *testing.T) {
	c, run, ids := recordFigure1(t)
	log, _ := c.Log(run)
	cg, _ := BuildCausalGraph(log)
	dd := cg.DataDependencies()
	if len(dd) != 4 { // raw->grid, grid->plot, grid->surface, surface->image
		t.Fatalf("data deps = %v", dd)
	}
	pd := cg.ProcessDependencies()
	if len(pd) != 3 { // reader->hist, reader->contour, contour->render
		t.Fatalf("process deps = %v", pd)
	}
	_ = ids
}

func TestDerivedFromSameRawData(t *testing.T) {
	c, run, ids := recordFigure1(t)
	log, _ := c.Log(run)
	cg, _ := BuildCausalGraph(log)
	shared := cg.DerivedFromSameRawData(ids["plot"], ids["image"])
	if len(shared) != 1 || shared[0] != ids["raw"] {
		t.Fatalf("shared raw = %v, want [%s]", shared, ids["raw"])
	}
}

func TestReproductionRecipe(t *testing.T) {
	c, run, ids := recordFigure1(t)
	log, _ := c.Log(run)
	cg, _ := BuildCausalGraph(log)
	r, err := cg.ReproductionRecipe(ids["image"])
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ModuleIDs) != 3 {
		t.Fatalf("recipe modules = %v, want 3", r.ModuleIDs)
	}
	// Causal order: reader before contour before render.
	order := strings.Join(r.ModuleIDs, ",")
	if order != "reader,contour,render" {
		t.Fatalf("recipe order = %q", order)
	}
	if len(r.RawInputs) != 1 || r.RawInputs[0] != ids["raw"] {
		t.Fatalf("raw inputs = %v", r.RawInputs)
	}
	if _, err := cg.ReproductionRecipe("nope"); err == nil {
		t.Fatal("unknown artifact accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c, run, ids := recordFigure1(t)
	log, _ := c.Log(run)
	// Second generator for the same artifact.
	log.Events = append(log.Events, Event{
		Seq: 9999, RunID: run, Kind: EventArtifactGen,
		ExecutionID: ids["render"], ArtifactID: ids["grid"],
	})
	if err := log.Validate(); err == nil {
		t.Fatal("double generation accepted")
	}
}

func TestValidateSequenceMonotonic(t *testing.T) {
	c, run, _ := recordFigure1(t)
	log, _ := c.Log(run)
	log.Events[2].Seq = log.Events[1].Seq
	if err := log.Validate(); err == nil {
		t.Fatal("non-monotonic sequence accepted")
	}
}

func TestDiffRunsParamChange(t *testing.T) {
	c, runA, _ := recordFigure1(t)
	logA, _ := c.Log(runA)

	// Run B: same workflow, isovalue changed, different render output.
	c2 := NewCollector()
	runB := c2.BeginRun("fig1", "hash-fig1", "juliana", nil)
	raw := c2.RecordInput(runB, Artifact{Type: "file", ContentHash: HashBytes([]byte("head.120.vtk"))})
	reader := c2.BeginExecution(runB, "reader", "FileReader", map[string]string{"file": "head.120.vtk"})
	c2.RecordUse(reader, raw, "file")
	grid := c2.RecordGeneration(reader, "data", Artifact{Type: "grid", ContentHash: HashBytes([]byte("grid-data"))})
	c2.EndExecution(reader, StatusOK, "", 0)
	hist := c2.BeginExecution(runB, "histogram", "Histogram", nil)
	c2.RecordUse(hist, grid, "data")
	c2.RecordGeneration(hist, "plot", Artifact{Type: "image", ContentHash: HashBytes([]byte("head-hist.png"))})
	c2.EndExecution(hist, StatusOK, "", 0)
	contour := c2.BeginExecution(runB, "contour", "Contour", map[string]string{"isovalue": "99"})
	c2.RecordUse(contour, grid, "data")
	surf := c2.RecordGeneration(contour, "surface", Artifact{Type: "mesh", ContentHash: HashBytes([]byte("mesh-99"))})
	c2.EndExecution(contour, StatusOK, "", 0)
	render := c2.BeginExecution(runB, "render", "Render", nil)
	c2.RecordUse(render, surf, "surface")
	c2.RecordGeneration(render, "image", Artifact{Type: "image", ContentHash: HashBytes([]byte("head-iso-99.png"))})
	c2.EndExecution(render, StatusOK, "", 0)
	c2.EndRun(runB, StatusOK)
	logB, _ := c2.Log(runB)

	d := DiffRuns(logA, logB)
	if !d.SameWorkflow {
		t.Fatal("same workflow not detected")
	}
	if got := d.ParamChanges["contour.isovalue"]; got != [2]string{"57", "99"} {
		t.Fatalf("param change = %v", got)
	}
	// contour and render outputs changed; reader and histogram did not.
	if len(d.OutputChanges) != 2 || d.OutputChanges[0] != "contour" || d.OutputChanges[1] != "render" {
		t.Fatalf("output changes = %v", d.OutputChanges)
	}
	// Explain the render change: the upstream contour param change accounts for it.
	upstream := func(string) []string { return []string{"contour", "reader"} }
	causes := ExplainOutputChange(logA, logB, d, "render", upstream)
	if len(causes) != 1 || !strings.Contains(causes[0], "contour.isovalue") {
		t.Fatalf("causes = %v", causes)
	}
}

func TestDiffRunsModuleSets(t *testing.T) {
	c, runA, _ := recordFigure1(t)
	logA, _ := c.Log(runA)
	c2 := NewCollector()
	runB := c2.BeginRun("fig1-v2", "other-hash", "x", nil)
	e := c2.BeginExecution(runB, "smoother", "Smooth", nil)
	c2.EndExecution(e, StatusOK, "", 0)
	c2.EndRun(runB, StatusOK)
	logB, _ := c2.Log(runB)
	d := DiffRuns(logA, logB)
	if d.SameWorkflow {
		t.Fatal("different workflows reported as same")
	}
	if len(d.OnlyInA) != 4 || len(d.OnlyInB) != 1 || d.OnlyInB[0] != "smoother" {
		t.Fatalf("OnlyInA=%v OnlyInB=%v", d.OnlyInA, d.OnlyInB)
	}
}

func TestNopRecorder(t *testing.T) {
	var r Recorder = NopRecorder{}
	run := r.BeginRun("w", "h", "a", nil)
	if run != "" {
		t.Fatal("nop returned non-empty run")
	}
	// All calls must be safe no-ops.
	r.EndRun(run, StatusOK)
	e := r.BeginExecution(run, "m", "T", nil)
	r.RecordUse(e, "x", "p")
	r.RecordGeneration(e, "p", Artifact{})
	r.RecordInput(run, Artifact{})
	r.EndExecution(e, StatusOK, "", 0)
	r.Annotate("s", KindRun, "k", "v", "a")
}

func TestNilCollectorIsNoop(t *testing.T) {
	var c *Collector
	if id := c.BeginRun("w", "h", "a", nil); id != "" {
		t.Fatal("nil collector returned run ID")
	}
	c.EndRun("x", StatusOK)
	c.RecordUse("e", "a", "p")
}

func TestCollectorConcurrentExecutions(t *testing.T) {
	c := NewCollector()
	run := c.BeginRun("w", "h", "a", nil)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := c.BeginExecution(run, "m", "T", nil)
			id := c.RecordGeneration(e, "out", Artifact{Type: "t"})
			c.RecordUse(e, id, "loop")
			c.EndExecution(e, StatusOK, "", 0)
		}()
	}
	wg.Wait()
	c.EndRun(run, StatusOK)
	log, err := c.Log(run)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Validate(); err != nil {
		t.Fatalf("concurrent log invalid: %v", err)
	}
	if len(log.Executions) != 32 || len(log.Artifacts) != 32 {
		t.Fatalf("got %d execs %d artifacts", len(log.Executions), len(log.Artifacts))
	}
}

func TestMultipleRunsIsolated(t *testing.T) {
	c := NewCollector()
	r1 := c.BeginRun("w1", "h1", "a", nil)
	r2 := c.BeginRun("w2", "h2", "b", nil)
	e1 := c.BeginExecution(r1, "m1", "T", nil)
	e2 := c.BeginExecution(r2, "m2", "T", nil)
	c.EndExecution(e1, StatusOK, "", 0)
	c.EndExecution(e2, StatusFailed, "boom", 0)
	c.EndRun(r1, StatusOK)
	c.EndRun(r2, StatusFailed)
	l1, _ := c.Log(r1)
	l2, _ := c.Log(r2)
	if len(l1.Executions) != 1 || l1.Executions[0].ModuleID != "m1" {
		t.Fatalf("run1 executions = %+v", l1.Executions)
	}
	if l2.Executions[0].Status != StatusFailed || l2.Executions[0].Error != "boom" {
		t.Fatalf("run2 status = %+v", l2.Executions[0])
	}
	if got := c.Runs(); len(got) != 2 || got[0] != r1 {
		t.Fatalf("Runs() = %v", got)
	}
	if got := c.Logs(); len(got) != 2 {
		t.Fatalf("Logs() = %d", len(got))
	}
}

func TestUnknownRunLog(t *testing.T) {
	c := NewCollector()
	if _, err := c.Log("missing"); err == nil {
		t.Fatal("unknown run accepted")
	}
}
