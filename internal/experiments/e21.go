package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/collab"
	"repro/internal/collab/api"
	"repro/internal/faultinject"
	"repro/internal/store"
	"repro/internal/store/replica"
)

// E21 measures failover robustness — the property the fencing-epoch and
// promotion machinery exists to guarantee, exercised the way a fleet
// actually fails.
//
// Partition recovery: a primary/follower pair replicates under a
// deterministic fault schedule (injected transport errors, latency,
// truncated response bodies, and full partitions flapping while the
// primary ingests). After each round heals, the follower must converge
// to a byte-identical copy of the primary's log. The gated
// chaos_convergence_ratio is the fraction of rounds that converged —
// 1.0 by construction, and a tight gate: any drop means shipped bytes
// were torn, skipped or reordered under faults.
//
// Promotion cutover: fresh replicating pairs are built and the follower
// promoted — drain the upstream log, bump the fencing epoch, drop
// read-only, fence the old primary — timing promote-to-first-accepted-
// write on the new primary (reported as promote_cutover_ms). The gated
// failover_fence_ratio is the fraction of cutovers after which the old
// primary both reported itself fenced and rejected a write: exactly-one-
// writable-primary, the no-split-brain property.
func E21() Result {
	const (
		rounds         = 4
		writesPerRound = 50
		promoTrials    = 3
	)

	// --- partition recovery under chaos --------------------------------
	pdir, err := tempDir()
	if err != nil {
		return errResult("E21", err)
	}
	ps, err := store.OpenFileStoreWith(pdir, store.FileOptions{Durability: store.DurabilityGroup})
	if err != nil {
		return errResult("E21", err)
	}
	defer ps.Close()
	nodeA, err := replica.NewNode(pdir, api.RolePrimary, nil)
	if err != nil {
		return errResult("E21", err)
	}
	srcA, err := replica.NewSource(ps)
	if err != nil {
		return errResult("E21", err)
	}
	primary := httptest.NewServer(collab.NewHandlerWith(collab.NewRepository(ps), collab.HandlerOptions{
		Source:   srcA,
		Failover: nodeA,
		Status: func() api.ReplicationStatus {
			rs := srcA.Status(nil, nil)
			rs.Epoch, rs.Fenced = nodeA.Epoch(), nodeA.Fenced()
			return rs
		},
	}))
	defer primary.Close()

	seedLogs, lastLayer := E14Seed(3, 12, 3)
	for _, l := range seedLogs {
		if err := ps.PutRunLog(l); err != nil {
			return errResult("E21", err)
		}
	}

	ft := faultinject.New(http.DefaultTransport, faultinject.Options{
		Seed:         21,
		ErrorRate:    0.15,
		LatencyRate:  0.3,
		Latency:      500 * time.Microsecond,
		TruncateRate: 0.1,
	})
	fdir, err := tempDir()
	if err != nil {
		return errResult("E21", err)
	}
	var f *replica.Follower
	for attempt := 0; ; attempt++ {
		f, err = replica.Open(replica.Options{
			Dir: fdir, Primary: primary.URL, Client: ft.Client(),
			Poll: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
			RequestTimeout: 2 * time.Second, MaxBatchBytes: 2048,
			BackoffSeed: 21,
		})
		if err == nil {
			break
		}
		if attempt > 100 {
			return errResult("E21", fmt.Errorf("follower never opened under injection: %w", err))
		}
	}
	defer f.Close()
	f.Start()

	converged, runSeq := 0, 0
	var healSecs []float64
	for round := 0; round < rounds; round++ {
		// Ingest while the link flaps through partitions and injected
		// faults.
		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					ft.Heal()
					return
				case <-time.After(time.Duration(2+r.Intn(8)) * time.Millisecond):
				}
				ft.Partition()
				select {
				case <-stop:
					ft.Heal()
					return
				case <-time.After(time.Duration(2+r.Intn(8)) * time.Millisecond):
				}
				ft.Heal()
			}
		}(int64(round))
		var werr error
		for i := 0; i < writesPerRound; i++ {
			runSeq++
			if err := ps.PutRunLog(E14Run("e21", runSeq, lastLayer[(runSeq*31)%len(lastLayer)])); err != nil {
				werr = err
				break
			}
			if i%16 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
		close(stop)
		wg.Wait()
		if werr != nil {
			return errResult("E21", werr)
		}

		// Healed: drive catch-up to convergence (injection stays on, so
		// retries are part of the measured recovery).
		healStart := time.Now()
		ok := false
		for attempt := 0; attempt < 300; attempt++ {
			if err := f.CatchUp(); err == nil {
				if _, behind := f.Lag(); behind == 0 {
					ok = true
					break
				}
			}
		}
		healSecs = append(healSecs, time.Since(healStart).Seconds())
		if !ok {
			continue
		}
		pb, perr := os.ReadFile(filepath.Join(pdir, store.LogFileName))
		fb, ferr := os.ReadFile(filepath.Join(fdir, store.LogFileName))
		if perr == nil && ferr == nil && string(pb) == string(fb) {
			converged++
		}
	}
	stats := ft.Stats()
	convergence := float64(converged) / float64(rounds)

	// --- promotion cutover ----------------------------------------------
	var cutoverMS []float64
	fenced := 0
	for trial := 0; trial < promoTrials; trial++ {
		ms, fencedOK, err := promoteOnce(trial)
		if err != nil {
			return errResult("E21", err)
		}
		cutoverMS = append(cutoverMS, ms)
		if fencedOK {
			fenced++
		}
	}
	fenceRatio := float64(fenced) / float64(promoTrials)
	cutover := median(cutoverMS)

	var b strings.Builder
	fmt.Fprintf(&b, "%-46s %8d\n", "chaos rounds (partition flaps + faulty link)", rounds)
	fmt.Fprintf(&b, "%-46s %8d\n", "primary writes under chaos", rounds*writesPerRound)
	fmt.Fprintf(&b, "%-46s %8d / %d / %d\n", "injected errors / truncations / partition drops",
		stats.Errors, stats.Truncations, stats.Partitioned)
	fmt.Fprintf(&b, "%-46s %8.2f\n", "rounds converged byte-identically (ratio)", convergence)
	fmt.Fprintf(&b, "%-46s %8.1f\n", "median heal-to-converged ms", 1000*median(healSecs))
	fmt.Fprintf(&b, "%-46s %8.1f\n", "median promote-to-first-accepted-write ms", cutover)
	fmt.Fprintf(&b, "%-46s %8.2f\n", "cutovers leaving old primary fenced (ratio)", fenceRatio)
	fmt.Fprintf(&b, "chaos: seeded fault schedule (15%% errors, 10%% truncated bodies, flapping partitions) over %d rounds x %d writes; cutover: median of %d fresh pairs, drain + epoch bump + fence\n",
		rounds, writesPerRound, promoTrials)
	return Result{
		ID:    "E21",
		Title: "failover: partition-heal convergence, promotion cutover, fencing",
		Table: b.String(),
		Metrics: []Metric{
			{Name: "chaos_convergence_ratio", Value: convergence, Unit: "ratio"},
			{Name: "failover_fence_ratio", Value: fenceRatio, Unit: "ratio"},
			{Name: "promote_cutover_ms", Value: cutover, Unit: "ms"},
			{Name: "heal_converge_ms", Value: 1000 * median(healSecs), Unit: "ms"},
		},
	}
}

// promoteOnce builds one fresh replicating pair, promotes the follower,
// and reports the promote-to-first-accepted-write latency in ms plus
// whether the old primary ended the cutover fenced and write-rejecting.
func promoteOnce(trial int) (ms float64, fencedOK bool, err error) {
	pdir, err := tempDir()
	if err != nil {
		return 0, false, err
	}
	ps, err := store.OpenFileStoreWith(pdir, store.FileOptions{Durability: store.DurabilityGroup})
	if err != nil {
		return 0, false, err
	}
	defer ps.Close()
	nodeA, err := replica.NewNode(pdir, api.RolePrimary, nil)
	if err != nil {
		return 0, false, err
	}
	src, err := replica.NewSource(ps)
	if err != nil {
		return 0, false, err
	}
	srvA := httptest.NewServer(collab.NewHandlerWith(collab.NewRepository(ps), collab.HandlerOptions{
		Source:   src,
		Failover: nodeA,
		Status: func() api.ReplicationStatus {
			rs := src.Status(nil, nil)
			rs.Epoch, rs.Fenced = nodeA.Epoch(), nodeA.Fenced()
			return rs
		},
	}))
	defer srvA.Close()

	seedLogs, lastLayer := E14Seed(3, 8, 3)
	for _, l := range seedLogs {
		if err := ps.PutRunLog(l); err != nil {
			return 0, false, err
		}
	}

	fdir, err := tempDir()
	if err != nil {
		return 0, false, err
	}
	f, err := replica.Open(replica.Options{Dir: fdir, Primary: srvA.URL, Poll: 5 * time.Millisecond})
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	nodeB, err := replica.NewNode(fdir, api.RoleFollower, f)
	if err != nil {
		return 0, false, err
	}
	f.Start()
	if err := f.CatchUp(); err != nil {
		return 0, false, err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	pr, err := nodeB.Promote(ctx)
	if err != nil {
		return 0, false, err
	}
	if err := f.Store().PutRunLog(E14Run(fmt.Sprintf("e21p%d", trial), 1, lastLayer[0])); err != nil {
		return 0, false, err
	}
	ms = 1000 * time.Since(start).Seconds()

	// No split-brain: the old primary must have been fenced by the
	// cutover and must reject a write.
	if pr.OldPrimaryFenced && nodeA.Fenced() {
		resp, err := http.Post(srvA.URL+"/v1/workflows", "application/json", strings.NewReader("{}"))
		if err == nil {
			fencedOK = resp.StatusCode == http.StatusForbidden
			resp.Body.Close()
		}
	}
	return ms, fencedOK, nil
}
