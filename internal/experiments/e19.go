package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/store/closurecache"
)

// E19 gates the observability layer's runtime cost. The whole design of
// internal/obs rests on one claim — that always-on instrumentation of the
// hot paths (WAL append/commit, store ingest, closure cache) is close
// enough to free that provd can ship with it enabled — so this experiment
// runs the same mixed ingest+closure workload with the registry's global
// gate off (obs.SetEnabled(false): timers skip the clock read, counters
// skip the atomic add) and on, and reports the instrumented /
// uninstrumented throughput ratio.
//
// The workload is the mixed shape E14 measures, in the configuration
// provd ships: a durable group-commit FileStore behind the closure cache,
// 8 concurrent writers publishing synthetic runs against a seeded lineage
// chain while one query worker sweeps the chain head's downstream closure
// continuously (every accepted run invalidates and patches the cached
// closure).
//
// The effect being measured is small (single-digit percent at most), so
// the design is everything: separate per-arm stores or windows see
// different fsync regimes on a shared host and drown the signal in
// 30-percent window-to-window noise. Instead ONE store runs under
// continuous load while the global gate toggles between adjacent
// fixed-length time slices; each adjacent (off, on) slice pair — same
// store, same cache state, milliseconds apart — yields one paired ratio,
// arm order alternating pair to pair so monotone drift (the store grows
// as it ingests) cancels to first order. The reported ratio is the
// median over all pairs. The acceptance metric obs_overhead_ratio is
// additionally clamped to 1.0: a ratio above 1 is "no measurable
// overhead", not a real speedup worth banking in a baseline. The raw
// per-pair ratios appear in the table.
//
// The same rounds also exercise the promise that provbench can report
// latency percentiles straight from the serving stack's own histograms:
// the ingest and WAL-commit p50/p99 shown here are snapshot deltas of
// prov_store_ingest_seconds and prov_wal_commit_seconds over the
// instrumented rounds — not a separate bench-side timer.
func E19() Result {
	const (
		writers = 8
		slice   = 250 * time.Millisecond
		pairs   = 12 // 12 (off, on) slice pairs = 6s of measurement
		seedLen = 96
	)

	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	dir, err := tempDir()
	if err != nil {
		return errResult("E19", err)
	}
	fs, err := store.OpenFileStoreWith(dir, store.FileOptions{Durability: store.DurabilityGroup})
	if err != nil {
		return errResult("E19", err)
	}
	c := closurecache.New(fs, closurecache.Options{})
	defer c.Close()
	for i := 0; i < seedLen; i++ {
		if err := c.PutRunLog(E15ChainRun(i)); err != nil {
			return errResult("E19", err)
		}
	}
	head := "e15-art-000000"
	if _, err := c.Closure(head, store.Down); err != nil {
		return errResult("E19", err)
	}

	errc := make(chan error, 1)
	fail := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, err := c.Closure(head, store.Down); err != nil {
				fail(err)
				return
			}
		}
	}()
	var ingested atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				l := E14Run(fmt.Sprintf("e19-w%d", w), i,
					fmt.Sprintf("e15-art-%06d", (w*7919+i)%seedLen))
				if err := c.PutRunLog(l); err != nil {
					fail(err)
					return
				}
				ingested.Add(1)
			}
		}(w)
	}

	snap := func(name string) obs.HistSnapshot {
		if h, ok := obs.Default().FindHistogram(name); ok {
			return h.Snapshot()
		}
		return obs.HistSnapshot{}
	}

	// Warm-up slice: batch sizes, cache state and the goroutine set
	// settle before the first measured pair.
	runtime.GC()
	time.Sleep(slice)
	ingestBefore := snap("prov_store_ingest_seconds")
	commitBefore := snap("prov_wal_commit_seconds")

	// measureSlice runs the load for one slice with the gate set as given
	// and returns the achieved ingest rate.
	measureSlice := func(instrumented bool) float64 {
		obs.SetEnabled(instrumented)
		c0 := ingested.Load()
		t0 := time.Now()
		time.Sleep(slice)
		return float64(ingested.Load()-c0) / time.Since(t0).Seconds()
	}

	var ratios []float64
	var bestOff, bestOn float64
	for p := 0; p < pairs; p++ {
		offFirst := p%2 == 0
		a := measureSlice(!offFirst)
		b := measureSlice(offFirst)
		on, off := a, b
		if offFirst {
			on, off = b, a
		}
		ratios = append(ratios, on/off)
		bestOff = max(bestOff, off)
		bestOn = max(bestOn, on)
	}
	obs.SetEnabled(true)
	ingest := snap("prov_store_ingest_seconds").Sub(ingestBefore)
	commit := snap("prov_wal_commit_seconds").Sub(commitBefore)

	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errc:
		return errResult("E19", err)
	default:
	}
	if ingest.Count == 0 {
		return errResult("E19", fmt.Errorf("instrumented slices recorded no ingest samples"))
	}

	sorted := append([]float64(nil), ratios...)
	sort.Float64s(sorted)
	rawRatio := sorted[len(sorted)/2]
	ratio := min(rawRatio, 1.0)
	us := func(ns uint64) float64 { return float64(ns) / 1e3 }

	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s\n", "arm (best slice)", "ingest runs/s")
	fmt.Fprintf(&b, "%-28s %14.0f\n", "uninstrumented", bestOff)
	fmt.Fprintf(&b, "%-28s %14.0f\n", "instrumented", bestOn)
	var rs []string
	for _, r := range ratios {
		rs = append(rs, fmt.Sprintf("%.3f", r))
	}
	fmt.Fprintf(&b, "per-pair on/off ratios: %s\n", strings.Join(rs, " "))
	fmt.Fprintf(&b, "overhead ratio: %.3f median, %.3f clamped (gate >= 0.95)\n", rawRatio, ratio)
	fmt.Fprintf(&b, "from the serving stack's own histograms (instrumented slices only):\n")
	fmt.Fprintf(&b, "  store ingest   p50 %7.0fµs  p99 %7.0fµs  (%d samples)\n",
		us(ingest.Quantile(0.5)), us(ingest.Quantile(0.99)), ingest.Count)
	fmt.Fprintf(&b, "  wal commit     p50 %7.0fµs  p99 %7.0fµs  (%d batches)\n",
		us(commit.Quantile(0.5)), us(commit.Quantile(0.99)), commit.Count)
	fmt.Fprintf(&b, "workload: %d writers + continuous closure sweep on one durable group-commit store,\n", writers)
	fmt.Fprintf(&b, "gate toggled across %d adjacent %s slice pairs (%d-run seed chain)\n", pairs, slice, seedLen)

	return Result{
		ID:    "E19",
		Title: "observability overhead: instrumented vs gated-off throughput, percentiles from live histograms",
		Table: b.String(),
		Metrics: []Metric{
			{Name: "obs_overhead_ratio", Value: ratio, Unit: "x"},
			{Name: "obs_overhead_ratio_raw", Value: rawRatio, Unit: "x"},
			{Name: "ingest_instrumented_runs_per_sec", Value: bestOn, Unit: "runs/s"},
			{Name: "ingest_uninstrumented_runs_per_sec", Value: bestOff, Unit: "runs/s"},
			{Name: "ingest_p50_us", Value: us(ingest.Quantile(0.5)), Unit: "us"},
			{Name: "ingest_p99_us", Value: us(ingest.Quantile(0.99)), Unit: "us"},
			{Name: "wal_commit_p50_us", Value: us(commit.Quantile(0.5)), Unit: "us"},
			{Name: "wal_commit_p99_us", Value: us(commit.Quantile(0.99)), Unit: "us"},
		},
	}
}
