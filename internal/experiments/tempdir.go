package experiments

import "os"

// tempDirImpl creates a temporary directory for file-store experiments.
// Callers are short-lived benchmark processes; directories are cleaned up
// by the OS temp policy, and explicitly removable via os.RemoveAll by
// callers that care.
func tempDirImpl() (string, error) {
	return os.MkdirTemp("", "provbench-*")
}
