package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/provenance"
	"repro/internal/query/datalog"
	"repro/internal/query/scan"
	"repro/internal/query/standing"
	"repro/internal/store"
)

// E20 gates the standing-query subsystem's reason to exist: incremental
// maintenance must beat the alternative a client actually has — re-running
// the query after every ingest — by a wide margin once more than a
// handful of subscriptions watch the store.
//
// Both arms ingest the same live stream of runs into the same seeded
// lineage DAG (8 chains, 12 links deep) with 64 registered standing
// queries of all three kinds: 24 transitive closures rooted at chain
// heads and interior artifacts, 24 triple patterns from full wildcards
// down to per-execution shapes, and 16 conjunctive Datalog queries.
//
//   - delta arm: the store is wrapped in a standing.Tap feeding a
//     standing.Manager, exactly provd's primary wiring. Each accepted run
//     pays pattern-indexed incremental maintenance for the affected
//     subscriptions only; after every ingest each subscription's pending
//     events are drained through EventsSince, so delivery cost is in the
//     measurement.
//   - re-query arm: a bare store ingests the same runs, and after every
//     ingest all 64 queries are evaluated from scratch — closure BFS,
//     full triple scan, fresh Datalog program — which is what a watcher
//     without the subsystem must do to stay current.
//
// The arms are verified equivalent: after the live phase every
// subscription's maintained result must be set-equal to the fresh
// re-query on the final store. The acceptance metric is the median of
// the paired per-round speedups (the arms alternate over the identical
// live stream), gated at >= 10x.
func E20() Result {
	const (
		chains  = 8
		seedLen = 12
		liveLen = 6 // live links appended per chain: 48 timed ingests
	)

	specs := e20Specs(chains)

	// --- delta arm: tapped store, incremental maintenance + drain. ---
	deltaStore := store.NewMemStore()
	defer deltaStore.Close()
	mgr := standing.NewManager(deltaStore, standing.Options{})
	tap := standing.NewTap(deltaStore, mgr)
	if err := e20Seed(tap, chains, seedLen); err != nil {
		return errResult("E20", err)
	}
	ids := make([]string, len(specs))
	cursors := make([]uint64, len(specs))
	for i, spec := range specs {
		snap, err := mgr.Subscribe(spec)
		if err != nil {
			return errResult("E20", fmt.Errorf("subscribe %d: %w", i, err))
		}
		ids[i] = snap.ID
		cursors[i] = snap.Seq
	}
	// --- re-query arm: bare store, every query from scratch per ingest. ---
	reqStore := store.NewMemStore()
	defer reqStore.Close()
	if err := e20Seed(reqStore, chains, seedLen); err != nil {
		return errResult("E20", err)
	}

	// The arms alternate round by round over the identical live stream —
	// round i extends every chain by one link in both stores — so each
	// round yields one paired ratio measured milliseconds apart on the
	// same-sized stores. The delta arm is small (tens of milliseconds
	// total), so a single sequential measurement would be at the mercy of
	// whatever GC pressure the rest of the suite left behind; the median
	// of paired per-round ratios is not.
	var delivered int
	var deltaDur, requeryDur time.Duration
	var ratios []float64
	for i := seedLen; i < seedLen+liveLen; i++ {
		deltaStart := time.Now()
		for c := 0; c < chains; c++ {
			if err := tap.PutRunLog(e20ChainRun(c, i)); err != nil {
				return errResult("E20", err)
			}
			for s := range ids {
				evs, ok := mgr.EventsSince(ids[s], cursors[s])
				if !ok {
					return errResult("E20", fmt.Errorf("subscription %s vanished", ids[s]))
				}
				for _, ev := range evs {
					delivered += len(ev.Items)
					cursors[s] = ev.Seq
				}
			}
		}
		deltaRound := time.Since(deltaStart)
		deltaDur += deltaRound

		requeryStart := time.Now()
		for c := 0; c < chains; c++ {
			if err := reqStore.PutRunLog(e20ChainRun(c, i)); err != nil {
				return errResult("E20", err)
			}
			for _, spec := range specs {
				if _, err := e20Requery(reqStore, spec); err != nil {
					return errResult("E20", err)
				}
			}
		}
		requeryRound := time.Since(requeryStart)
		requeryDur += requeryRound
		ratios = append(ratios, float64(requeryRound)/float64(deltaRound))
	}

	// Equivalence: the maintained results must match a fresh evaluation of
	// the final store, subscription by subscription.
	for i, spec := range specs {
		snap, ok := mgr.Snapshot(ids[i])
		if !ok {
			return errResult("E20", fmt.Errorf("subscription %s vanished", ids[i]))
		}
		want, err := e20Requery(deltaStore, spec)
		if err != nil {
			return errResult("E20", err)
		}
		got := append([]string(nil), snap.Items...)
		sort.Strings(got)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			return errResult("E20", fmt.Errorf("subscription %d (%s) diverged: %d maintained vs %d re-queried items",
				i, spec.Kind, len(got), len(want)))
		}
	}

	ingests := chains * liveLen
	sorted := append([]float64(nil), ratios...)
	sort.Float64s(sorted)
	speedup := sorted[len(sorted)/2]
	perIngestDelta := deltaDur / time.Duration(ingests)
	perIngestReq := requeryDur / time.Duration(ingests)

	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %12s %14s\n", "arm (48 live ingests, 64 subs)", "total", "per ingest")
	fmt.Fprintf(&b, "%-34s %12s %14s\n", "incremental maintenance + drain", deltaDur.Round(10*time.Microsecond), perIngestDelta.Round(time.Microsecond))
	fmt.Fprintf(&b, "%-34s %12s %14s\n", "full re-query of every sub", requeryDur.Round(10*time.Microsecond), perIngestReq.Round(time.Microsecond))
	var rs []string
	for _, r := range ratios {
		rs = append(rs, fmt.Sprintf("%.1f", r))
	}
	fmt.Fprintf(&b, "per-round requery/delta ratios: %s\n", strings.Join(rs, " "))
	fmt.Fprintf(&b, "speedup: %.1fx median (gate >= 10x)\n", speedup)
	fmt.Fprintf(&b, "subscriptions: %d closure, %d triple, %d conjunctive; %d delta items delivered\n",
		e20ClosureSubs(chains), e20TripleSubs(chains), e20ConjSubs(), delivered)
	fmt.Fprintf(&b, "all %d maintained results verified set-equal to a fresh re-query of the final store\n", len(specs))

	return Result{
		ID:    "E20",
		Title: "standing queries: incremental maintenance vs per-ingest re-query, 64 subscriptions",
		Table: b.String(),
		Metrics: []Metric{
			{Name: "standing_delta_vs_requery_speedup_x", Value: speedup, Unit: "x"},
			{Name: "standing_delta_us_per_ingest", Value: float64(perIngestDelta.Nanoseconds()) / 1e3, Unit: "us"},
			{Name: "standing_requery_us_per_ingest", Value: float64(perIngestReq.Nanoseconds()) / 1e3, Unit: "us"},
			{Name: "standing_subscriptions", Value: float64(len(specs)), Unit: "subs"},
			{Name: "standing_delta_items_delivered", Value: float64(delivered), Unit: "items"},
		},
	}
}

func e20ClosureSubs(chains int) int { return 3 * chains }
func e20TripleSubs(chains int) int  { return 3 * chains }
func e20ConjSubs() int              { return 16 }

// e20Specs builds the 64-subscription mix registered in both arms.
func e20Specs(chains int) []standing.Spec {
	var specs []standing.Spec
	art := func(c, i int) string { return fmt.Sprintf("e20-c%d-art-%06d", c, i) }
	exec := func(c, i int) string { return fmt.Sprintf("e20-c%d-exec-%06d", c, i) }
	for c := 0; c < chains; c++ {
		// Closures: everything downstream of the chain head, downstream of
		// an interior artifact, and the full ancestry of another.
		specs = append(specs,
			standing.Spec{Kind: standing.KindClosure, Root: art(c, 0), Dir: store.Down},
			standing.Spec{Kind: standing.KindClosure, Root: art(c, 3), Dir: store.Down},
			standing.Spec{Kind: standing.KindClosure, Root: art(c, 6), Dir: store.Up},
		)
		// Triple patterns: what one execution generated, who used one
		// artifact, and everything about one execution.
		specs = append(specs,
			standing.Spec{Kind: standing.KindTriple, Pattern: store.Triple{S: exec(c, 2), P: store.PredGenerated}},
			standing.Spec{Kind: standing.KindTriple, Pattern: store.Triple{P: store.PredUsed, O: art(c, 5)}},
			standing.Spec{Kind: standing.KindTriple, Pattern: store.Triple{S: exec(c, 8)}},
		)
	}
	conj := []standing.Spec{
		{Kind: standing.KindConjunctive, Query: "used(E, A), generated(E, B)", Output: []string{"A", "B"}},
		{Kind: standing.KindConjunctive, Query: "generated(E, A), partOfRun(E, R)", Output: []string{"A", "R"}},
		{Kind: standing.KindConjunctive, Query: "generated(E, A), moduleType(E, 'Synth')", Output: []string{"E", "A"}},
		{Kind: standing.KindConjunctive, Query: "used(E, A), module(E, 'step')", Output: []string{"E", "A"}},
	}
	for i := 0; i < e20ConjSubs(); i++ {
		specs = append(specs, conj[i%len(conj)])
	}
	return specs
}

// e20ChainRun is link i of chain c: consume artifact i, generate i+1.
func e20ChainRun(c, i int) *provenance.RunLog {
	runID := fmt.Sprintf("e20-c%d-run-%06d", c, i)
	exec := fmt.Sprintf("e20-c%d-exec-%06d", c, i)
	in := fmt.Sprintf("e20-c%d-art-%06d", c, i)
	out := fmt.Sprintf("e20-c%d-art-%06d", c, i+1)
	l := &provenance.RunLog{}
	l.Run = provenance.Run{ID: runID, WorkflowID: "e20", Status: provenance.StatusOK}
	l.Executions = []*provenance.Execution{{ID: exec, RunID: runID, ModuleID: "step", ModuleType: "Synth", Status: provenance.StatusOK}}
	l.Artifacts = []*provenance.Artifact{{ID: in, RunID: runID, Type: "blob"}, {ID: out, RunID: runID, Type: "blob"}}
	l.Events = []provenance.Event{
		{Seq: 1, RunID: runID, Kind: provenance.EventArtifactUsed, ExecutionID: exec, ArtifactID: in},
		{Seq: 2, RunID: runID, Kind: provenance.EventArtifactGen, ExecutionID: exec, ArtifactID: out},
	}
	return l
}

func e20Seed(st store.Store, chains, seedLen int) error {
	for i := 0; i < seedLen; i++ {
		for c := 0; c < chains; c++ {
			if err := st.PutRunLog(e20ChainRun(c, i)); err != nil {
				return err
			}
		}
	}
	return nil
}

// e20Requery evaluates one spec from scratch against the store — the cost
// a client pays per ingest without the standing-query subsystem. Results
// come back sorted and deduplicated for the equivalence check.
func e20Requery(st store.Store, spec standing.Spec) ([]string, error) {
	switch spec.Kind {
	case standing.KindClosure:
		order, err := st.Closure(spec.Root, spec.Dir)
		if err != nil {
			if errors.Is(err, store.ErrNotFound) {
				return nil, nil
			}
			return nil, err
		}
		sort.Strings(order)
		return order, nil
	case standing.KindTriple:
		set := map[string]struct{}{}
		err := scan.Logs(st, func(l *provenance.RunLog) error {
			for _, tr := range store.TriplesOf(l) {
				if (spec.Pattern.S == "" || spec.Pattern.S == tr.S) &&
					(spec.Pattern.P == "" || spec.Pattern.P == tr.P) &&
					(spec.Pattern.O == "" || spec.Pattern.O == tr.O) {
					set[standing.TripleItem(tr)] = struct{}{}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		items := make([]string, 0, len(set))
		for it := range set {
			items = append(items, it)
		}
		sort.Strings(items)
		return items, nil
	case standing.KindConjunctive:
		p := datalog.NewProgram()
		if err := datalog.LoadStore(p, st); err != nil {
			return nil, err
		}
		head := "q(" + strings.Join(spec.Output, ", ") + ")"
		r, err := datalog.ParseRule(head + " :- " + spec.Query)
		if err != nil {
			return nil, err
		}
		if err := p.AddRule(r); err != nil {
			return nil, err
		}
		goal, err := datalog.ParseAtom(head)
		if err != nil {
			return nil, err
		}
		res, err := p.Query(goal)
		if err != nil {
			return nil, err
		}
		set := map[string]struct{}{}
		for _, row := range res.Rows {
			set[strings.Join(row, " ")] = struct{}{}
		}
		items := make([]string, 0, len(set))
		for it := range set {
			items = append(items, it)
		}
		sort.Strings(items)
		return items, nil
	}
	return nil, fmt.Errorf("e20: unknown spec kind %q", spec.Kind)
}
