// Package experiments implements the reproduction experiment suite of
// DESIGN.md §3 (E1–E13). Each experiment returns a formatted table; the
// cmd/provbench binary prints them and EXPERIMENTS.md records the results.
// The paper (a tutorial) has no numeric tables of its own: E1 and E2
// reproduce its two figures, and E3–E12 quantify the claims its prose makes
// about the systems it surveys.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analogy"
	"repro/internal/collab"
	"repro/internal/dbprov"
	"repro/internal/engine"
	"repro/internal/evolution"
	"repro/internal/interop"
	"repro/internal/params"
	"repro/internal/provenance"
	"repro/internal/query/datalog"
	"repro/internal/query/pql"
	"repro/internal/query/triplequery"
	"repro/internal/relalg"
	"repro/internal/store"
	"repro/internal/store/closurecache"
	"repro/internal/store/shardedstore"
	"repro/internal/store/wal"
	"repro/internal/views"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

// Metric is one machine-readable measurement of an experiment, emitted by
// cmd/provbench as BENCH_<ID>.json so successive PRs accumulate a perf
// trajectory.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Result is one experiment's rendered output plus its structured metrics.
type Result struct {
	ID      string
	Title   string
	Table   string
	Metrics []Metric
}

// All runs every experiment in order.
func All() []Result {
	return []Result{
		E1(), E2(), E3(), E4(), E5(), E6(), E7(), E8(), E9(), E10(), E11(), E12(), E13(), E14(), E15(), E16(), E17(), E18(), E19(), E20(), E21(),
	}
}

// ByID runs one experiment.
func ByID(id string) (Result, error) {
	fns := map[string]func() Result{
		"E1": E1, "E2": E2, "E3": E3, "E4": E4, "E5": E5, "E6": E6,
		"E7": E7, "E8": E8, "E9": E9, "E10": E10, "E11": E11, "E12": E12,
		"E13": E13, "E14": E14, "E15": E15, "E16": E16, "E17": E17, "E18": E18,
		"E19": E19, "E20": E20, "E21": E21,
	}
	fn, ok := fns[strings.ToUpper(id)]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return fn(), nil
}

func newEngine(rec provenance.Recorder, workers int, cache *engine.Cache) *engine.Engine {
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	return engine.New(engine.Options{Registry: reg, Recorder: rec, Workers: workers, Cache: cache})
}

// E1 reproduces Figure 1: prospective vs retrospective provenance of the
// medical-imaging workflow.
func E1() Result {
	wf := workloads.MedicalImaging()
	col := provenance.NewCollector()
	e := newEngine(col, 1, nil)
	res, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		return errResult("E1", err)
	}
	col.Annotate(res.Artifacts["render.image"], provenance.KindArtifact,
		"note", "isovalue 57 isolates bone", "juliana")
	log, _ := col.Log(res.RunID)
	ps := wf.Stat()
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %10s %10s\n", "quantity", "prospective", "retrospective")
	fmt.Fprintf(&b, "%-34s %10d %10s\n", "modules / executions", ps.Modules, fmt.Sprint(len(log.Executions)))
	fmt.Fprintf(&b, "%-34s %10d %10s\n", "connections / use+gen events", ps.Connections, fmt.Sprint(countEvents(log)))
	fmt.Fprintf(&b, "%-34s %10d %10d\n", "parameters / artifacts", ps.Params, len(log.Artifacts))
	fmt.Fprintf(&b, "%-34s %10d %10d\n", "annotations", ps.Annotations+1, len(log.Annotations))
	fmt.Fprintf(&b, "%-34s %10s %10d\n", "total events", "-", len(log.Events))
	fmt.Fprintf(&b, "final products: histogram=%s..., isosurface=%s...\n",
		short(res.Outputs["histogram.plot"].Hash()), short(res.Outputs["render.image"].Hash()))
	return Result{ID: "E1", Title: "Figure 1: prospective vs retrospective provenance", Table: b.String()}
}

func countEvents(l *provenance.RunLog) int {
	n := 0
	for _, ev := range l.Events {
		if ev.Kind == provenance.EventArtifactUsed || ev.Kind == provenance.EventArtifactGen {
			n++
		}
	}
	return n
}

// E2 reproduces Figure 2: analogy transfer success over perturbed targets.
func E2() Result {
	wa := workloads.DownloadAndRender()
	wb := workloads.DownloadAndRenderSmoothed()
	const n = 50
	ok, mappedRight := 0, 0
	for i := 0; i < n; i++ {
		target := workloads.MedicalImaging()
		// Perturb: vary isovalue, bins; add an independent chain every
		// third target.
		_ = target.SetParam("contour", "isovalue", fmt.Sprint(40+i))
		_ = target.SetParam("histogram", "bins", fmt.Sprint(8+i%8))
		if i%3 == 0 {
			_ = target.AddModule(&workflow.Module{
				ID: fmt.Sprintf("extra%d", i), Name: "extra", Type: "SensorGen",
				Outputs: []workflow.Port{{Name: "series", Type: workloads.TypeSeries}},
			})
		}
		res, err := analogy.Refine(wa, wb, target)
		if err != nil {
			continue
		}
		if res.Workflow.Validate() == nil {
			ok++
		}
		if res.Mapping["contour"] == "contour" && res.Mapping["render"] == "render" {
			mappedRight++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-38s %8s\n", "metric", "value")
	fmt.Fprintf(&b, "%-38s %8d\n", "perturbed targets", n)
	fmt.Fprintf(&b, "%-38s %7.0f%%\n", "transfer success (valid result)", 100*float64(ok)/n)
	fmt.Fprintf(&b, "%-38s %7.0f%%\n", "anchor mapping correct", 100*float64(mappedRight)/n)
	return Result{ID: "E2", Title: "Figure 2: workflow refinement by analogy", Table: b.String()}
}

// E3 measures capture overhead: runtime with capture off vs on (collector)
// vs on+persist (file store), over chain workflows.
func E3() Result {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %14s %14s %9s\n", "modules", "no capture", "collector", "collector+file", "overhead")
	for _, n := range []int{10, 50, 200} {
		wf := workloads.Chain(n)
		off := timeRuns(func() { mustRun(newEngine(nil, 4, nil), wf) }, 5)
		col := provenance.NewCollector()
		e := newEngine(col, 4, nil)
		on := timeRuns(func() { mustRun(e, wf) }, 5)
		dir, _ := tempDir()
		fs, err := store.OpenFileStore(dir)
		if err != nil {
			return errResult("E3", err)
		}
		colf := provenance.NewCollector()
		ef := newEngine(colf, 4, nil)
		file := timeRuns(func() {
			res := mustRun(ef, wf)
			l, _ := colf.Log(res.RunID)
			_ = fs.PutRunLog(l)
		}, 5)
		fs.Close()
		fmt.Fprintf(&b, "%-10d %14s %14s %14s %8.2fx\n", n, off, on, file,
			float64(on)/float64(off))
	}
	return Result{ID: "E3", Title: "capture overhead (chain workflows, 5-run median)", Table: b.String()}
}

// E4 measures lineage-query latency vs provenance size across backends,
// comparing the per-edge reference BFS against the pushed-down batch
// closure (O(edges) vs O(hops) backend operations).
func E4() Result {
	var b strings.Builder
	var metrics []Metric
	fmt.Fprintf(&b, "%-10s %-8s %-8s %14s %14s %9s\n",
		"modules", "edges", "backend", "per-edge", "batch", "speedup")
	for _, n := range []int{20, 100, 200} {
		wf := workloads.Chain(n)
		col := provenance.NewCollector()
		e := newEngine(col, 4, nil)
		res := mustRun(e, wf)
		log, _ := col.Log(res.RunID)
		target := res.Artifacts[fmt.Sprintf("s%02d.out", n-1)]
		dir, _ := tempDir()
		fs, err := store.OpenFileStore(dir)
		if err != nil {
			return errResult("E4", err)
		}
		backends := []store.Store{store.NewMemStore(), store.NewRelStore(), store.NewTripleStore(), fs}
		for _, s := range backends {
			if err := s.PutRunLog(log); err != nil {
				return errResult("E4", err)
			}
			perEdge := timeRuns(func() {
				if _, err := store.NaiveClosure(s, target, store.Up); err != nil {
					panic(err)
				}
			}, 5)
			batch := timeRuns(func() {
				if _, err := s.Closure(target, store.Up); err != nil {
					panic(err)
				}
			}, 5)
			fmt.Fprintf(&b, "%-10d %-8d %-8s %14s %14s %8.1fx\n",
				n, countEvents(log), s.Name(), perEdge, batch,
				float64(perEdge)/float64(batch))
			metrics = append(metrics,
				Metric{Name: fmt.Sprintf("lineage_peredge_%s_n%d", s.Name(), n), Value: float64(perEdge.Nanoseconds()), Unit: "ns"},
				Metric{Name: fmt.Sprintf("lineage_batch_%s_n%d", s.Name(), n), Value: float64(batch.Nanoseconds()), Unit: "ns"})
		}
		fs.Close()
	}
	return Result{ID: "E4", Title: "lineage latency: per-edge BFS vs pushed-down batch closure, per backend", Table: b.String(), Metrics: metrics}
}

// E5 measures user-view provenance reduction.
func E5() Result {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-12s %10s %10s %8s\n", "chain", "group size", "concrete", "abstract", "factor")
	for _, n := range []int{12, 24, 48} {
		wf := workloads.Chain(n)
		col := provenance.NewCollector()
		e := newEngine(col, 1, nil)
		res := mustRun(e, wf)
		log, _ := col.Log(res.RunID)
		for _, g := range []int{2, 4, 8} {
			v := views.NewView(fmt.Sprintf("g%d", g))
			for i := 0; i < n; i += g {
				var members []string
				for j := i; j < i+g && j < n; j++ {
					members = append(members, fmt.Sprintf("s%02d", j))
				}
				if err := v.Group(fmt.Sprintf("c%02d", i/g), members...); err != nil {
					return errResult("E5", err)
				}
			}
			r, err := v.Reduction(log)
			if err != nil {
				return errResult("E5", err)
			}
			fmt.Fprintf(&b, "%-12d %-12d %10d %10d %7.1fx\n",
				n, g, r.ConcreteNodes, r.AbstractNodes, r.Factor)
		}
		_ = res
	}
	return Result{ID: "E5", Title: "user views: provenance overload reduction (ZOOM)", Table: b.String()}
}

// E6 compares the query languages on the same lineage workload.
func E6() Result {
	wf := workloads.Chain(60)
	col := provenance.NewCollector()
	e := newEngine(col, 1, nil)
	res := mustRun(e, wf)
	log, _ := col.Log(res.RunID)
	target := res.Artifacts["s59.out"]

	mem := store.NewMemStore()
	if err := mem.PutRunLog(log); err != nil {
		return errResult("E6", err)
	}
	ts := store.NewTripleStore()
	if err := ts.PutRunLog(log); err != nil {
		return errResult("E6", err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %12s %8s\n", "engine / query", "latency", "rows")
	// Direct BFS.
	var bfsRows int
	t := timeRuns(func() {
		lin, err := store.Lineage(mem, target)
		if err != nil {
			panic(err)
		}
		bfsRows = len(lin)
	}, 5)
	fmt.Fprintf(&b, "%-34s %12s %8d\n", "native BFS (store.Lineage)", t, bfsRows)
	// PQL LINEAGE OF.
	var pqlRows int
	t = timeRuns(func() {
		r, err := pql.Run(mem, fmt.Sprintf("LINEAGE OF '%s'", target))
		if err != nil {
			panic(err)
		}
		pqlRows = len(r.Rows)
	}, 5)
	fmt.Fprintf(&b, "%-34s %12s %8d\n", "PQL LINEAGE OF", t, pqlRows)
	// Datalog ancestor closure (includes full fixpoint materialization).
	var dlRows int
	t = timeRuns(func() {
		p, err := datalog.NewProvenanceProgram(mem)
		if err != nil {
			panic(err)
		}
		atom, _ := datalog.ParseAtom(fmt.Sprintf("ancestor('%s', X)", target))
		r, err := p.Query(atom)
		if err != nil {
			panic(err)
		}
		dlRows = len(r.Rows)
	}, 3)
	fmt.Fprintf(&b, "%-34s %12s %8d\n", "Datalog ancestor (fixpoint)", t, dlRows)
	// The same ancestor atom pushed down to the store's batch closure: no
	// fact loading, no fixpoint.
	var pdRows int
	t = timeRuns(func() {
		atom, _ := datalog.ParseAtom(fmt.Sprintf("ancestor('%s', X)", target))
		r, pushed, err := datalog.AncestorQueryViaStore(mem, atom)
		if err != nil || !pushed {
			panic(fmt.Sprintf("pushdown failed: pushed=%v err=%v", pushed, err))
		}
		pdRows = len(r.Rows)
	}, 5)
	fmt.Fprintf(&b, "%-34s %12s %8d\n", "Datalog ancestor (pushed-down)", t, pdRows)
	// SPARQL-like one-hop pattern (BGP engines do closure by repeated
	// joins; one hop is the comparable primitive).
	var tqRows int
	t = timeRuns(func() {
		r, err := triplequery.Run(ts, fmt.Sprintf(
			"SELECT ?e WHERE { ?e prov:generated <%s> . }", target))
		if err != nil {
			panic(err)
		}
		tqRows = len(r.Rows)
	}, 5)
	fmt.Fprintf(&b, "%-34s %12s %8d\n", "SPARQL-like single hop", t, tqRows)
	if bfsRows != pqlRows || bfsRows != dlRows || bfsRows != pdRows {
		fmt.Fprintf(&b, "WARNING: row counts disagree (%d/%d/%d/%d)\n", bfsRows, pqlRows, dlRows, pdRows)
	}
	return Result{ID: "E6", Title: "query languages on the same lineage (60-module chain)", Table: b.String()}
}

// E7 runs the Provenance-Challenge integration experiment.
func E7() Result {
	runs, err := interop.RunPipeline(4)
	if err != nil {
		return errResult("E7", err)
	}
	graphs, err := interop.SystemGraphs(runs)
	if err != nil {
		return errResult("E7", err)
	}
	merged, err := interop.Integrate(graphs...)
	if err != nil {
		return errResult("E7", err)
	}
	names := []string{"kepler-sim", "taverna-sim", "vistrails-sim"}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "graph")
	for _, q := range interop.Suite() {
		fmt.Fprintf(&b, " %-3s", q.ID)
	}
	fmt.Fprintf(&b, " %s\n", "answered")
	row := func(name string, r *interop.ChallengeReport) {
		fmt.Fprintf(&b, "%-14s", name)
		for _, q := range interop.Suite() {
			mark := "no"
			if r.Answerable[q.ID] {
				mark = "yes"
			}
			fmt.Fprintf(&b, " %-3s", mark)
		}
		fmt.Fprintf(&b, " %d/%d\n", r.Answered, r.Total)
	}
	for i, g := range graphs {
		row(names[i], interop.RunSuite(names[i], g))
	}
	row("integrated", interop.RunSuite("integrated", merged))
	return Result{ID: "E7", Title: "Provenance Challenge: single-system vs integrated answerability", Table: b.String()}
}

// E8 measures version-tree materialization and diff cost vs history size.
func E8() Result {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %14s %14s\n", "versions", "materialize", "diff(head,mid)")
	for _, n := range []int{100, 1000, 5000} {
		tree := evolution.NewTree("bench")
		at, err := tree.Commit(tree.Root(), "u", "import",
			evolution.ImportWorkflow(workloads.MedicalImaging()))
		if err != nil {
			return errResult("E8", err)
		}
		var mid int
		for i := 0; i < n; i++ {
			at, err = tree.Commit(at, "u", "",
				[]evolution.Action{evolution.SetParamAction("contour", "isovalue", fmt.Sprint(40+i%100))})
			if err != nil {
				return errResult("E8", err)
			}
			if i == n/2 {
				mid = at
			}
		}
		head := at
		mat := timeRuns(func() {
			if _, err := tree.Materialize(head); err != nil {
				panic(err)
			}
		}, 3)
		diff := timeRuns(func() {
			if _, err := tree.DiffVersions(head, mid); err != nil {
				panic(err)
			}
		}, 3)
		fmt.Fprintf(&b, "%-12d %14s %14s\n", n, mat, diff)
	}
	return Result{ID: "E8", Title: "evolution: version-tree materialization and diff scaling", Table: b.String()}
}

// E9 measures why-provenance overhead on relational pipelines.
func E9() Result {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %14s %9s\n", "rows", "plain join", "prov join", "overhead")
	for _, n := range []int{100, 500, 2000} {
		left := make([][]relalg.Val, n)
		right := make([][]relalg.Val, n)
		for i := 0; i < n; i++ {
			left[i] = []relalg.Val{int64(i % (n / 10)), int64(i)}
			right[i] = []relalg.Val{int64(i % (n / 10)), int64(1000 + i)}
		}
		l, err := relalg.NewRelation("l", []string{"k", "x"}, left)
		if err != nil {
			return errResult("E9", err)
		}
		r, err := relalg.NewRelation("r", []string{"k", "y"}, right)
		if err != nil {
			return errResult("E9", err)
		}
		// "Plain" baseline: hash join without witness bookkeeping.
		plain := timeRuns(func() { plainJoin(l, r) }, 3)
		prov := timeRuns(func() {
			if _, err := relalg.Join(l, r, "k", "k"); err != nil {
				panic(err)
			}
		}, 3)
		fmt.Fprintf(&b, "%-10d %14s %14s %8.2fx\n", n, plain, prov, float64(prov)/float64(plain))
	}
	return Result{ID: "E9", Title: "why-provenance overhead on joins (tuple witnesses)", Table: b.String()}
}

// plainJoin is the no-provenance baseline for E9: the same hash join,
// materializing joined tuples, but without witness bookkeeping.
func plainJoin(l, r *relalg.Relation) int {
	idx := map[int64][]int{}
	for i, t := range r.Tuples {
		idx[t.Values[0].(int64)] = append(idx[t.Values[0].(int64)], i)
	}
	var out [][]relalg.Val
	for _, t := range l.Tuples {
		for _, i := range idx[t.Values[0].(int64)] {
			vals := make([]relalg.Val, 0, len(t.Values)+len(r.Tuples[i].Values))
			vals = append(vals, t.Values...)
			vals = append(vals, r.Tuples[i].Values...)
			out = append(out, vals)
		}
	}
	return len(out)
}

// E10 measures parameter-sweep throughput vs workers and cache effect.
// The base is a compute-bound 8-stage chain; only the final stage's
// parameter is swept, so with caching the first 7 stages execute once.
func E10() Result {
	base := workloads.Chain(8)
	for i := 0; i < 8; i++ {
		_ = base.SetParam(fmt.Sprintf("s%02d", i), "work", "2000")
	}
	sweep := func() *params.Sweep {
		return &params.Sweep{
			Base: base,
			Axes: []params.Axis{
				{ModuleID: "s07", Param: "work", Values: []string{
					"2001", "2002", "2003", "2004", "2005", "2006",
					"2007", "2008", "2009", "2010", "2011", "2012"}},
			},
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %14s %12s\n", "workers", "cache", "elapsed", "cache hits")
	for _, w := range []int{1, 4} {
		for _, cached := range []bool{false, true} {
			var cache *engine.Cache
			if cached {
				cache = engine.NewCache()
			}
			e := newEngine(nil, 4, cache)
			start := time.Now()
			if _, err := params.Run(context.Background(), e, sweep(), params.Options{Workers: w}); err != nil {
				return errResult("E10", err)
			}
			elapsed := time.Since(start)
			hits, _ := cache.Stats()
			fmt.Fprintf(&b, "%-10d %-8v %14s %12d\n", w, cached, elapsed.Round(time.Microsecond), hits)
		}
	}
	return Result{ID: "E10", Title: "parameter sweep: 12 points, workers × cache", Table: b.String()}
}

// E11 measures storage footprint per event across backends.
func E11() Result {
	wf := workloads.RandomLayered(11, 6, 6, 2)
	col := provenance.NewCollector()
	e := newEngine(col, 4, nil)
	var logs []*provenance.RunLog
	for i := 0; i < 10; i++ {
		res := mustRun(e, wf)
		l, _ := col.Log(res.RunID)
		logs = append(logs, l)
	}
	dir, _ := tempDir()
	fs, err := store.OpenFileStore(dir)
	if err != nil {
		return errResult("E11", err)
	}
	backends := []store.Store{store.NewMemStore(), store.NewRelStore(), store.NewTripleStore(), fs}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %12s %14s\n", "backend", "runs", "events", "bytes", "bytes/event")
	for _, s := range backends {
		for _, l := range logs {
			if err := s.PutRunLog(l); err != nil {
				return errResult("E11", err)
			}
		}
		st, err := s.Stats()
		if err != nil {
			return errResult("E11", err)
		}
		fmt.Fprintf(&b, "%-10s %10d %10d %12d %14.1f\n",
			s.Name(), st.Runs, st.Events, st.Bytes, float64(st.Bytes)/float64(st.Events))
		s.Close()
	}
	return Result{ID: "E11", Title: "storage footprint per provenance event, per backend", Table: b.String()}
}

// E12 measures collaboratory search latency and recommendation coverage.
func E12() Result {
	repo := collab.NewRepository(store.NewMemStore())
	users, err := collab.SynthesizeCommunity(repo, collab.CommunityOptions{Seed: 1, Users: 30, RunsEach: 4})
	if err != nil {
		return errResult("E12", err)
	}
	searchT := timeRuns(func() { repo.Search("visualization imaging", 10) }, 10)
	covered := 0
	var hitScores []float64
	for _, u := range users {
		recs := repo.Recommend(u, 3)
		if len(recs) > 0 {
			covered++
			hitScores = append(hitScores, recs[0].Score)
		}
	}
	sort.Float64s(hitScores)
	var b strings.Builder
	fmt.Fprintf(&b, "%-38s %12s\n", "metric", "value")
	st := repo.Stat()
	fmt.Fprintf(&b, "%-38s %12d\n", "workflows", st.Workflows)
	fmt.Fprintf(&b, "%-38s %12d\n", "published runs", st.Runs)
	fmt.Fprintf(&b, "%-38s %12s\n", "search latency (10-run median)", searchT)
	fmt.Fprintf(&b, "%-38s %11.0f%%\n", "users with recommendations", 100*float64(covered)/float64(len(users)))
	return Result{ID: "E12", Title: "collaboratory: search latency and recommendation coverage", Table: b.String()}
}

// E13 measures incremental closure maintenance on the durable file backend
// at depth 128: cold pushed-down Closure vs warm cached closures, plus the
// cost of an ingest that patches a warm closure in place and the latency of
// the first query after that patch. Every cached answer is verified
// set-equal against NaiveClosure on the current graph.
func E13() Result {
	const n = 128
	wf := workloads.Chain(n)
	col := provenance.NewCollector()
	e := newEngine(col, 4, nil)
	res := mustRun(e, wf)
	log, _ := col.Log(res.RunID)
	head := res.Artifacts["s00.out"]
	tail := res.Artifacts[fmt.Sprintf("s%02d.out", n-1)]

	dir, _ := tempDir()
	fs, err := store.OpenFileStore(dir)
	if err != nil {
		return errResult("E13", err)
	}
	defer fs.Close()
	cached := closurecache.Wrap(fs)
	if err := cached.PutRunLog(log); err != nil {
		return errResult("E13", err)
	}

	verify := func(root string, d store.Direction) error {
		got, err := cached.Closure(root, d)
		if err != nil {
			return err
		}
		want, err := store.NaiveClosure(fs, root, d)
		if err != nil {
			return err
		}
		sort.Strings(got)
		sort.Strings(want)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			return fmt.Errorf("cached closure of %s diverged from NaiveClosure", root)
		}
		return nil
	}

	cold := timeRunsExact(func() {
		if _, err := fs.Closure(tail, store.Up); err != nil {
			panic(err)
		}
	}, 7)
	// Warm the upstream closure of the tail and the downstream closure of
	// the head, then measure pure cache hits.
	if err := verify(tail, store.Up); err != nil {
		return errResult("E13", err)
	}
	if err := verify(head, store.Down); err != nil {
		return errResult("E13", err)
	}
	warm := timeRunsExact(func() {
		if _, err := cached.Closure(tail, store.Up); err != nil {
			panic(err)
		}
	}, 7)

	// Ingest runs that consume the chain's tail: each patches the warm
	// downstream closure of the head in place.
	extend := func(i int) *provenance.RunLog {
		l := &provenance.RunLog{}
		l.Run = provenance.Run{ID: fmt.Sprintf("e13-ext-%04d", i), WorkflowID: "ext", Status: provenance.StatusOK}
		exec := fmt.Sprintf("e13-exec-%04d", i)
		out := fmt.Sprintf("e13-art-%04d", i)
		l.Executions = []*provenance.Execution{{ID: exec, RunID: l.Run.ID, ModuleID: "ext", ModuleType: "Ext", Status: provenance.StatusOK}}
		l.Artifacts = []*provenance.Artifact{
			{ID: tail, RunID: l.Run.ID, Type: "blob"},
			{ID: out, RunID: l.Run.ID, Type: "blob"},
		}
		l.Events = []provenance.Event{
			{Seq: 1, RunID: l.Run.ID, Kind: provenance.EventArtifactUsed, ExecutionID: exec, ArtifactID: tail},
			{Seq: 2, RunID: l.Run.ID, Kind: provenance.EventArtifactGen, ExecutionID: exec, ArtifactID: out},
		}
		return l
	}
	i := 0
	patch := timeRunsExact(func() {
		if err := cached.PutRunLog(extend(i)); err != nil {
			panic(err)
		}
		i++
	}, 5)
	postPatch := timeRunsExact(func() {
		if _, err := cached.Closure(head, store.Down); err != nil {
			panic(err)
		}
	}, 7)
	if err := verify(head, store.Down); err != nil {
		return errResult("E13", err)
	}
	m := cached.Metrics()
	if m.Patched == 0 {
		return errResult("E13", fmt.Errorf("ingests never patched a cached closure (metrics %+v)", m))
	}

	speedup := float64(cold) / float64(warm)
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %14s\n", "measure (file backend, depth 128)", "value")
	fmt.Fprintf(&b, "%-44s %14s\n", "cold pushed-down Closure", cold)
	fmt.Fprintf(&b, "%-44s %14s\n", "warm cached Closure", warm)
	fmt.Fprintf(&b, "%-44s %13.1fx\n", "warm speedup", speedup)
	fmt.Fprintf(&b, "%-44s %14s\n", "ingest + incremental patch", patch)
	fmt.Fprintf(&b, "%-44s %14s\n", "first query after patch (still warm)", postPatch)
	fmt.Fprintf(&b, "%-44s %14d\n", "closures patched in place", m.Patched)
	fmt.Fprintf(&b, "%-44s %14d\n", "closures evicted", m.Evicted)
	fmt.Fprintf(&b, "%-44s %14s\n", "cached == NaiveClosure", "verified")
	return Result{
		ID:    "E13",
		Title: "incremental closure maintenance: cold vs warm vs ingest-time patch (file backend)",
		Table: b.String(),
		Metrics: []Metric{
			{Name: "closure_cold_file_d128", Value: float64(cold.Nanoseconds()), Unit: "ns"},
			{Name: "closure_warm_file_d128", Value: float64(warm.Nanoseconds()), Unit: "ns"},
			{Name: "closure_warm_speedup_file_d128", Value: speedup, Unit: "x"},
			{Name: "ingest_incremental_patch_file", Value: float64(patch.Nanoseconds()), Unit: "ns"},
			{Name: "closure_post_patch_file_d128", Value: float64(postPatch.Nanoseconds()), Unit: "ns"},
		},
	}
}

// E14Seed builds the E14 base graph: one root artifact feeding `layers`
// layers of `runsPerLayer` runs, each consuming one previous-layer artifact
// and generating `fanout` artifacts — a wide DAG whose downstream closure
// from the root is a few large BFS frontiers, the shape the frontier-
// batched scatter/gather is designed for. Returns the logs and the last
// layer's artifact IDs (the attachment points for ingested runs).
func E14Seed(layers, runsPerLayer, fanout int) ([]*provenance.RunLog, []string) {
	root := &provenance.RunLog{}
	root.Run = provenance.Run{ID: "e14-seed-root", WorkflowID: "e14", Status: provenance.StatusOK}
	root.Executions = []*provenance.Execution{{ID: "e14-root-exec", RunID: root.Run.ID, ModuleID: "src", ModuleType: "Synth", Status: provenance.StatusOK}}
	root.Artifacts = []*provenance.Artifact{{ID: "e14-root-art", RunID: root.Run.ID, Type: "blob"}}
	root.Events = []provenance.Event{{Seq: 1, RunID: root.Run.ID, Kind: provenance.EventArtifactGen, ExecutionID: "e14-root-exec", ArtifactID: "e14-root-art"}}
	logs := []*provenance.RunLog{root}
	prev := []string{"e14-root-art"}
	for l := 0; l < layers; l++ {
		var next []string
		for r := 0; r < runsPerLayer; r++ {
			runID := fmt.Sprintf("e14-seed-%d-%03d", l, r)
			in := prev[r%len(prev)]
			lg := &provenance.RunLog{}
			lg.Run = provenance.Run{ID: runID, WorkflowID: "e14", Status: provenance.StatusOK}
			exec := fmt.Sprintf("e14-sx-%d-%03d", l, r)
			lg.Executions = []*provenance.Execution{{ID: exec, RunID: runID, ModuleID: "m", ModuleType: "Synth", Status: provenance.StatusOK}}
			lg.Artifacts = []*provenance.Artifact{{ID: in, RunID: runID, Type: "blob"}}
			lg.Events = []provenance.Event{{Seq: 1, RunID: runID, Kind: provenance.EventArtifactUsed, ExecutionID: exec, ArtifactID: in}}
			seq := uint64(1)
			for f := 0; f < fanout; f++ {
				out := fmt.Sprintf("e14-sa-%d-%03d-%d", l, r, f)
				lg.Artifacts = append(lg.Artifacts, &provenance.Artifact{ID: out, RunID: runID, Type: "blob"})
				seq++
				lg.Events = append(lg.Events, provenance.Event{Seq: seq, RunID: runID, Kind: provenance.EventArtifactGen, ExecutionID: exec, ArtifactID: out})
				next = append(next, out)
			}
			logs = append(logs, lg)
		}
		prev = next
	}
	return logs, prev
}

// E14Run synthesizes one small ingest run consuming `in` and generating one
// fresh artifact — the steady-state "publish a derived result" unit of the
// E14 workload.
func E14Run(tag string, i int, in string) *provenance.RunLog {
	runID := fmt.Sprintf("e14-%s-run-%06d", tag, i)
	exec := fmt.Sprintf("e14-%s-exec-%06d", tag, i)
	out := fmt.Sprintf("e14-%s-art-%06d", tag, i)
	l := &provenance.RunLog{}
	l.Run = provenance.Run{ID: runID, WorkflowID: "e14", Status: provenance.StatusOK}
	l.Executions = []*provenance.Execution{{ID: exec, RunID: runID, ModuleID: "pub", ModuleType: "Synth", Status: provenance.StatusOK}}
	l.Artifacts = []*provenance.Artifact{{ID: in, RunID: runID, Type: "blob"}, {ID: out, RunID: runID, Type: "blob"}}
	l.Events = []provenance.Event{
		{Seq: 1, RunID: runID, Kind: provenance.EventArtifactUsed, ExecutionID: exec, ArtifactID: in},
		{Seq: 2, RunID: runID, Kind: provenance.EventArtifactGen, ExecutionID: exec, ArtifactID: out},
	}
	return l
}

// E14 measures sharded-store scaling at 1, 2, 4 and 8 durable file-backed
// shards (every accepted run fsyncs its home shard's log), in the scenario
// the sharding ROADMAP item names: a store that must absorb ingest and
// serve traversals at the same time, where single-log backends bottleneck
// both on one lock and one file.
//
// Three measurements per shard count, all over the same wide seed DAG:
//
//   - quiet ingest: 320 runs through 16 concurrent writers with no query
//     load. Sharding's win here is commit-latency overlap (concurrent runs
//     with different home shards fsync in parallel), bounded on a
//     single-core host by the serial CPU share of each append.
//   - cold closure: the downstream closure of the seed root (every
//     derived artifact and execution), scatter/gathered per BFS hop. This
//     is the price side of the router: per-hop fan-out overhead against
//     the single store's one-lock BFS.
//   - mixed workload (the headline): fixed 700ms windows (median of three)
//     of 8 writers publishing runs while one query worker sweeps the
//     root's downstream closure continuously — the recall/invalidation
//     sweep of §2.3 run against a live store. On a single shard every sweep holds the one
//     store lock for its whole BFS and ingest throughput collapses; on a
//     sharded store the sweep takes each shard lock only per hop, so
//     writers stream between hops. Both achieved rates are reported; the
//     acceptance metric is the mixed-load ingest speedup.
func E14() Result {
	const (
		quietRuns    = 320
		quietWriters = 16
		mixedWriters = 8
		window       = 700 * time.Millisecond
	)
	var b strings.Builder
	var metrics []Metric
	fmt.Fprintf(&b, "%-8s %12s %9s %12s %14s %9s %12s %12s\n",
		"shards", "quiet runs/s", "speedup", "closure", "mixed runs/s", "speedup", "queries/s", "query avg")
	quietBase, mixedBase := 0.0, 0.0
	for _, nShards := range []int{1, 2, 4, 8} {
		dir, err := tempDir()
		if err != nil {
			return errResult("E14", err)
		}
		r, err := shardedstore.Open(dir, nShards, true)
		if err != nil {
			return errResult("E14", err)
		}
		seedLogs, lastLayer := E14Seed(4, 16, 3)
		for _, l := range seedLogs {
			if err := r.PutRunLog(l); err != nil {
				r.Close()
				return errResult("E14", err)
			}
		}

		// Quiet durable ingest: 320 runs, 16 writers, no queries.
		var quietErr atomic.Value
		work := make(chan *provenance.RunLog, quietRuns)
		for i := 0; i < quietRuns; i++ {
			work <- E14Run("q", i, lastLayer[i%len(lastLayer)])
		}
		close(work)
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < quietWriters; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for l := range work {
					if err := r.PutRunLog(l); err != nil {
						quietErr.Store(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if err, _ := quietErr.Load().(error); err != nil {
			r.Close()
			return errResult("E14", err)
		}
		quietRPS := float64(quietRuns) / time.Since(start).Seconds()

		// Cold scatter/gather closure of the root's full downstream.
		var closureLen int
		closure := timeRuns(func() {
			got, err := r.Closure("e14-root-art", store.Down)
			if err != nil {
				panic(err)
			}
			closureLen = len(got)
		}, 5)
		if closureLen == 0 {
			r.Close()
			return errResult("E14", fmt.Errorf("empty root closure"))
		}

		// Mixed workload: continuous closure sweeps + concurrent publishers.
		// Scheduler and lock-handoff dynamics make one window noisy, so the
		// reported rates are the median-by-ingest-rate of three windows.
		type mixedSample struct {
			rps, qps float64
			queryAvg time.Duration
		}
		var samples []mixedSample
		for trial := 0; trial < 3; trial++ {
			var stop atomic.Bool
			var ingested, queried atomic.Int64
			var queryNanos atomic.Int64
			var mixedErr atomic.Value
			wg = sync.WaitGroup{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					qs := time.Now()
					if _, err := r.Closure("e14-root-art", store.Down); err != nil {
						mixedErr.Store(err)
						return
					}
					queryNanos.Add(int64(time.Since(qs)))
					queried.Add(1)
				}
			}()
			for w := 0; w < mixedWriters; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; !stop.Load(); i++ {
						l := E14Run(fmt.Sprintf("t%dw%d", trial, w), i, lastLayer[(w*7919+i)%len(lastLayer)])
						if err := r.PutRunLog(l); err != nil {
							mixedErr.Store(err)
							return
						}
						ingested.Add(1)
					}
				}(w)
			}
			time.Sleep(window)
			stop.Store(true)
			wg.Wait()
			if err, _ := mixedErr.Load().(error); err != nil {
				r.Close()
				return errResult("E14", err)
			}
			s := mixedSample{
				rps: float64(ingested.Load()) / window.Seconds(),
				qps: float64(queried.Load()) / window.Seconds(),
			}
			if n := queried.Load(); n > 0 {
				s.queryAvg = time.Duration(queryNanos.Load() / n)
			}
			samples = append(samples, s)
		}
		r.Close()
		sort.Slice(samples, func(i, j int) bool { return samples[i].rps < samples[j].rps })
		med := samples[len(samples)/2]
		mixedRPS, queriesPS, queryAvg := med.rps, med.qps, med.queryAvg

		quietSpeedup, mixedSpeedup := 1.0, 1.0
		if quietBase == 0 {
			quietBase, mixedBase = quietRPS, mixedRPS
		} else {
			quietSpeedup = quietRPS / quietBase
			mixedSpeedup = mixedRPS / mixedBase
		}
		fmt.Fprintf(&b, "%-8d %12.0f %8.2fx %12s %14.0f %8.2fx %12.0f %12s\n",
			nShards, quietRPS, quietSpeedup, closure, mixedRPS, mixedSpeedup,
			queriesPS, queryAvg.Round(time.Microsecond))
		metrics = append(metrics,
			Metric{Name: fmt.Sprintf("ingest_quiet_runs_per_sec_shards%d", nShards), Value: quietRPS, Unit: "runs/s"},
			Metric{Name: fmt.Sprintf("ingest_quiet_speedup_shards%d", nShards), Value: quietSpeedup, Unit: "x"},
			Metric{Name: fmt.Sprintf("closure_cold_wide_shards%d", nShards), Value: float64(closure.Nanoseconds()), Unit: "ns"},
			Metric{Name: fmt.Sprintf("ingest_mixed_runs_per_sec_shards%d", nShards), Value: mixedRPS, Unit: "runs/s"},
			Metric{Name: fmt.Sprintf("ingest_mixed_speedup_shards%d", nShards), Value: mixedSpeedup, Unit: "x"},
			Metric{Name: fmt.Sprintf("query_mixed_per_sec_shards%d", nShards), Value: queriesPS, Unit: "q/s"},
			Metric{Name: fmt.Sprintf("query_mixed_avg_ms_shards%d", nShards), Value: float64(queryAvg.Milliseconds()), Unit: "ms"})
	}
	fmt.Fprintf(&b, "mixed workload: 8 publishers + 1 continuous downstream-closure sweep, median of 3×700ms windows, durable (fsync) shards\n")
	return Result{
		ID:      "E14",
		Title:   "sharded store: ingest throughput (quiet and under query load) and closure latency vs shard count",
		Table:   b.String(),
		Metrics: metrics,
	}
}

// E15ChainRun synthesizes run i of a dependency chain: it consumes the
// previous run's artifact and generates one new artifact, so the whole
// store folds into one deep lineage — the shape whose closure the warm
// reopen must serve without replaying the log.
func E15ChainRun(i int) *provenance.RunLog {
	runID := fmt.Sprintf("e15-run-%06d", i)
	exec := fmt.Sprintf("e15-exec-%06d", i)
	in := fmt.Sprintf("e15-art-%06d", i)
	out := fmt.Sprintf("e15-art-%06d", i+1)
	l := &provenance.RunLog{}
	l.Run = provenance.Run{ID: runID, WorkflowID: "e15", Status: provenance.StatusOK}
	l.Executions = []*provenance.Execution{{ID: exec, RunID: runID, ModuleID: "step", ModuleType: "Synth", Status: provenance.StatusOK}}
	l.Artifacts = []*provenance.Artifact{{ID: in, RunID: runID, Type: "blob"}, {ID: out, RunID: runID, Type: "blob"}}
	l.Events = []provenance.Event{
		{Seq: 1, RunID: runID, Kind: provenance.EventArtifactUsed, ExecutionID: exec, ArtifactID: in},
		{Seq: 2, RunID: runID, Kind: provenance.EventArtifactGen, ExecutionID: exec, ArtifactID: out},
	}
	return l
}

// E15 measures the write-ahead group-commit and checkpoint subsystem
// (internal/store/wal) on the durable file backend:
//
//   - Durable ingest throughput under 16 concurrent writers, per-append
//     fsync vs group commit over the same 480-run workload. Group commit
//     coalesces the concurrent appends into shared batches — the fsync
//     count drops by roughly the achieved batch size, and throughput
//     rises with it because the fsync latency is the write path's
//     dominant cost.
//   - Restart latency on a 1500-run store: a cold reopen (full log scan +
//     cold deep closure) vs a reopen from checkpoint (snapshot load, log
//     suffix replay only, closure served warm from the persisted closure
//     cache). The warm closure is verified set-equal to the cold one.
func E15() Result {
	const (
		writers    = 16
		ingestRuns = 480
		chainLen   = 1500
	)

	// --- durable ingest: fsync-per-append vs group commit ---------------
	ingest := func(d store.Durability) (rps float64, syncs uint64, err error) {
		dir, err := tempDir()
		if err != nil {
			return 0, 0, err
		}
		fs, err := store.OpenFileStoreWith(dir, store.FileOptions{Durability: d})
		if err != nil {
			return 0, 0, err
		}
		defer fs.Close()
		work := make(chan *provenance.RunLog, ingestRuns)
		for i := 0; i < ingestRuns; i++ {
			work <- E14Run("e15-"+d.String(), i, fmt.Sprintf("e15-in-%s-%03d", d, i%7))
		}
		close(work)
		// First error wins; a buffered channel avoids atomic.Value's
		// inconsistently-typed-store panic across distinct error types.
		ingestErr := make(chan error, 1)
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for l := range work {
					if err := fs.PutRunLog(l); err != nil {
						select {
						case ingestErr <- err:
						default:
						}
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-ingestErr:
			return 0, 0, err
		default:
		}
		return float64(ingestRuns) / elapsed.Seconds(), fs.WALMetrics().Syncs, nil
	}
	fsyncRPS, fsyncSyncs, err := ingest(store.DurabilityFsync)
	if err != nil {
		return errResult("E15", err)
	}
	groupRPS, groupSyncs, err := ingest(store.DurabilityGroup)
	if err != nil {
		return errResult("E15", err)
	}
	if groupSyncs == 0 {
		return errResult("E15", fmt.Errorf("group commit issued no fsyncs"))
	}
	ingestSpeedup := groupRPS / fsyncRPS
	fsyncReduction := float64(fsyncSyncs) / float64(groupSyncs)

	// --- restart: cold reopen vs reopen from checkpoint ------------------
	dir, err := tempDir()
	if err != nil {
		return errResult("E15", err)
	}
	build, err := store.OpenFileStoreWith(dir, store.FileOptions{Durability: store.DurabilityGroup})
	if err != nil {
		return errResult("E15", err)
	}
	cache := closurecache.New(build, closurecache.Options{SnapshotDir: dir})
	for i := 0; i < chainLen; i++ {
		if err := cache.PutRunLog(E15ChainRun(i)); err != nil {
			return errResult("E15", err)
		}
	}
	head := "e15-art-000000"
	want, err := cache.Closure(head, store.Down) // warm the deep closure
	if err != nil {
		return errResult("E15", err)
	}
	if err := cache.Checkpoint(); err != nil {
		return errResult("E15", err)
	}
	if err := cache.Close(); err != nil {
		return errResult("E15", err)
	}

	var warmLen int
	reopenWarm := timeRunsExact(func() {
		fs, err := store.OpenFileStoreWith(dir, store.FileOptions{Durability: store.DurabilityGroup})
		if err != nil {
			panic(err)
		}
		c := closurecache.New(fs, closurecache.Options{SnapshotDir: dir})
		if m := c.Metrics(); m.Restored == 0 {
			panic("warm reopen restored no closures")
		}
		got, err := c.Closure(head, store.Down)
		if err != nil {
			panic(err)
		}
		if m := c.Metrics(); m.ClosureHits != 1 {
			panic("reopened closure was not served warm")
		}
		warmLen = len(got)
		c.Close()
	}, 5)

	// Force the cold path: no store checkpoint, no cache snapshot.
	if err := wal.RemoveCheckpoint(store.CheckpointPath(dir)); err != nil {
		return errResult("E15", err)
	}
	if err := wal.RemoveCheckpoint(closurecache.SnapshotPath(dir)); err != nil {
		return errResult("E15", err)
	}
	var coldLen int
	reopenCold := timeRunsExact(func() {
		fs, err := store.OpenFileStoreWith(dir, store.FileOptions{Durability: store.DurabilityGroup})
		if err != nil {
			panic(err)
		}
		got, err := fs.Closure(head, store.Down)
		if err != nil {
			panic(err)
		}
		coldLen = len(got)
		fs.Close()
	}, 5)
	if coldLen != warmLen || coldLen != len(want) {
		return errResult("E15", fmt.Errorf("warm closure diverged: cold %d, warm %d, built %d nodes", coldLen, warmLen, len(want)))
	}
	warmSpeedup := float64(reopenCold) / float64(reopenWarm)

	var b strings.Builder
	fmt.Fprintf(&b, "%-52s %14s\n", "measure", "value")
	fmt.Fprintf(&b, "%-52s %14.0f\n", fmt.Sprintf("durable ingest, fsync/append (%d writers), runs/s", writers), fsyncRPS)
	fmt.Fprintf(&b, "%-52s %14.0f\n", fmt.Sprintf("durable ingest, group commit (%d writers), runs/s", writers), groupRPS)
	fmt.Fprintf(&b, "%-52s %13.1fx\n", "group-commit ingest speedup", ingestSpeedup)
	fmt.Fprintf(&b, "%-52s %14d\n", "fsyncs, fsync/append mode", fsyncSyncs)
	fmt.Fprintf(&b, "%-52s %14d\n", "fsyncs, group-commit mode", groupSyncs)
	fmt.Fprintf(&b, "%-52s %13.1fx\n", "fsync reduction (≈ achieved batch size)", fsyncReduction)
	fmt.Fprintf(&b, "%-52s %14s\n", fmt.Sprintf("cold reopen + closure (%d-run log, full scan)", chainLen), reopenCold.Round(time.Microsecond))
	fmt.Fprintf(&b, "%-52s %14s\n", "reopen from checkpoint + warm closure", reopenWarm.Round(time.Microsecond))
	fmt.Fprintf(&b, "%-52s %13.1fx\n", "warm-restart speedup", warmSpeedup)
	fmt.Fprintf(&b, "%-52s %14s\n", "warm closure == cold closure", "verified")
	return Result{
		ID:    "E15",
		Title: "WAL group commit + checkpoint: durable ingest throughput and warm restarts",
		Table: b.String(),
		Metrics: []Metric{
			{Name: "ingest_fsync_runs_per_sec", Value: fsyncRPS, Unit: "runs/s"},
			{Name: "ingest_group_runs_per_sec", Value: groupRPS, Unit: "runs/s"},
			{Name: "ingest_group_speedup_x", Value: ingestSpeedup, Unit: "x"},
			{Name: "fsync_reduction_x", Value: fsyncReduction, Unit: "x"},
			{Name: "reopen_cold_ns", Value: float64(reopenCold.Nanoseconds()), Unit: "ns"},
			{Name: "reopen_warm_ns", Value: float64(reopenWarm.Nanoseconds()), Unit: "ns"},
			{Name: "reopen_warm_speedup_x", Value: warmSpeedup, Unit: "x"},
		},
	}
}

// E16ChainRun synthesizes run i of the E16 deep chain (the same shape as
// E15's, in its own namespace): it consumes e16-art-i and generates
// e16-art-i+1, so the tail artifact's upstream closure walks every run.
func E16ChainRun(i int) *provenance.RunLog {
	runID := fmt.Sprintf("e16-run-%06d", i)
	exec := fmt.Sprintf("e16-exec-%06d", i)
	in := fmt.Sprintf("e16-art-%06d", i)
	out := fmt.Sprintf("e16-art-%06d", i+1)
	l := &provenance.RunLog{}
	l.Run = provenance.Run{ID: runID, WorkflowID: "e16", Status: provenance.StatusOK}
	l.Executions = []*provenance.Execution{{ID: exec, RunID: runID, ModuleID: "step", ModuleType: "Synth", Status: provenance.StatusOK}}
	l.Artifacts = []*provenance.Artifact{{ID: in, RunID: runID, Type: "blob"}, {ID: out, RunID: runID, Type: "blob"}}
	l.Events = []provenance.Event{
		{Seq: 1, RunID: runID, Kind: provenance.EventArtifactUsed, ExecutionID: exec, ArtifactID: in},
		{Seq: 2, RunID: runID, Kind: provenance.EventArtifactGen, ExecutionID: exec, ArtifactID: out},
	}
	return l
}

// E16 measures the closure pushdown on the workload the sharding ROADMAP
// item flagged as a regression: a depth-128 chain-shaped lineage over 4
// file-backed shards, where the pre-pushdown router paid one global
// scatter/gather round per BFS hop (257 rounds for this chain) and a
// single FileStore answers the whole closure under one lock.
//
// The pushdown runs each shard's closure to local fixpoint and exchanges
// only the cross-shard frontier between rounds, so rounds collapse to the
// chain's cross-shard crossings (+1); the experiment asserts that bound,
// verifies the pushdown's visit order equals the single store's exactly,
// and reports the speedup over the per-hop path (the gated metric) plus
// how close the sharded traversal now gets to the single-store time. It
// also reports the allocation count of one wide fan-out Expand hop — the
// buffer-reuse observable of the router's scratch pooling.
func E16() Result {
	const (
		chainRuns = 128
		nShards   = 4
	)
	logs := make([]*provenance.RunLog, chainRuns)
	for i := range logs {
		logs[i] = E16ChainRun(i)
	}
	tail := fmt.Sprintf("e16-art-%06d", chainRuns)

	// Single FileStore reference: one-lock BFS over the resident index.
	singleDir, err := tempDir()
	if err != nil {
		return errResult("E16", err)
	}
	fs, err := store.OpenFileStore(singleDir)
	if err != nil {
		return errResult("E16", err)
	}
	defer fs.Close()
	for _, l := range logs {
		if err := fs.PutRunLog(l); err != nil {
			return errResult("E16", err)
		}
	}
	var want []string
	single := timeRunsExact(func() {
		got, err := fs.Closure(tail, store.Up)
		if err != nil {
			panic(err)
		}
		want = got
	}, 21)
	if len(want) != 2*chainRuns {
		return errResult("E16", fmt.Errorf("chain closure has %d nodes, want %d", len(want), 2*chainRuns))
	}

	// Sharded router over the same chain.
	shardDir, err := tempDir()
	if err != nil {
		return errResult("E16", err)
	}
	r, err := shardedstore.Open(shardDir, nShards, false)
	if err != nil {
		return errResult("E16", err)
	}
	defer r.Close()
	for _, l := range logs {
		if err := r.PutRunLog(l); err != nil {
			return errResult("E16", err)
		}
	}

	// Pre-pushdown path: one scatter/gather Expand round per BFS hop.
	legacyRounds := 0
	if _, err := store.CloseOverExpand(func(ids []string, dir store.Direction) (map[string][]string, error) {
		legacyRounds++
		return r.Expand(ids, dir)
	}, tail, store.Up); err != nil {
		return errResult("E16", err)
	}
	legacy := timeRunsExact(func() {
		if _, err := r.ClosureViaExpand(tail, store.Up); err != nil {
			panic(err)
		}
	}, 21)

	// Pushdown: local fixpoints + cross-shard frontier exchange.
	var trace shardedstore.ClosureTrace
	var got []string
	pushdown := timeRunsExact(func() {
		ids, tr, err := r.TracedClosure(tail, store.Up)
		if err != nil {
			panic(err)
		}
		got, trace = ids, tr
	}, 21)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		return errResult("E16", fmt.Errorf("pushdown closure diverged from single store: %d vs %d nodes", len(got), len(want)))
	}
	// Independent crossing count: the chain's upstream walk hands off
	// between shards exactly where consecutive runs have different homes.
	// Computed from run placement alone — NOT from the trace — so a
	// pushdown that degrades toward one hop per round fails this check
	// instead of inflating its own crossing counter to match.
	independentCrossings := 0
	for i := 1; i < chainRuns; i++ {
		if r.HomeShard(logs[i].Run.ID) != r.HomeShard(logs[i-1].Run.ID) {
			independentCrossings++
		}
	}
	if trace.Rounds != independentCrossings+1 || trace.Crossings != independentCrossings {
		return errResult("E16", fmt.Errorf("pushdown executed %d rounds / %d crossings; run placement implies exactly %d crossings (+1 round)",
			trace.Rounds, trace.Crossings, independentCrossings))
	}

	// Wide fan-out Expand allocations: one hop over the E14 wide DAG's
	// last layer, upstream (every probe fans to a generator shard). The
	// router's pooled scratch keeps this flat per hop.
	wide := shardedstore.NewMem(nShards)
	seedLogs, lastLayer := E14Seed(3, 16, 3)
	for _, l := range seedLogs {
		if err := wide.PutRunLog(l); err != nil {
			return errResult("E16", err)
		}
	}
	allocs := testing.AllocsPerRun(64, func() {
		if _, err := wide.Expand(lastLayer, store.Up); err != nil {
			panic(err)
		}
	})

	speedup := float64(legacy) / float64(pushdown)
	roundsReduction := float64(legacyRounds) / float64(trace.Rounds)
	vsSingle := float64(single) / float64(pushdown)
	var b strings.Builder
	fmt.Fprintf(&b, "%-52s %14s\n", "measure (depth-128 chain, 4 file shards)", "value")
	fmt.Fprintf(&b, "%-52s %14s\n", "single FileStore closure (one-lock BFS)", single)
	fmt.Fprintf(&b, "%-52s %14s\n", fmt.Sprintf("sharded per-hop closure (%d rounds)", legacyRounds), legacy)
	fmt.Fprintf(&b, "%-52s %14s\n", fmt.Sprintf("sharded pushdown closure (%d rounds)", trace.Rounds), pushdown)
	fmt.Fprintf(&b, "%-52s %13.1fx\n", "pushdown speedup over per-hop", speedup)
	fmt.Fprintf(&b, "%-52s %13.1fx\n", "rounds reduction", roundsReduction)
	fmt.Fprintf(&b, "%-52s %14d\n", "cross-shard crossings", trace.Crossings)
	fmt.Fprintf(&b, "%-52s %14s\n", "rounds == placement crossings + 1", "verified")
	fmt.Fprintf(&b, "%-52s %13.2fx\n", "single-store time / pushdown time", vsSingle)
	fmt.Fprintf(&b, "%-52s %14.0f\n", "allocs per wide fan-out Expand hop", allocs)
	fmt.Fprintf(&b, "%-52s %14s\n", "pushdown order == single-store order", "verified")
	return Result{
		ID:    "E16",
		Title: "closure pushdown: deep chain lineage over shards, local fixpoints + frontier exchange",
		Table: b.String(),
		Metrics: []Metric{
			{Name: "deep_closure_single_file_ns", Value: float64(single.Nanoseconds()), Unit: "ns"},
			{Name: "deep_closure_legacy_ns", Value: float64(legacy.Nanoseconds()), Unit: "ns"},
			{Name: "deep_closure_pushdown_ns", Value: float64(pushdown.Nanoseconds()), Unit: "ns"},
			{Name: "deep_closure_pushdown_speedup_x", Value: speedup, Unit: "x"},
			{Name: "deep_closure_rounds", Value: float64(trace.Rounds), Unit: "rounds"},
			{Name: "deep_closure_crossings", Value: float64(trace.Crossings), Unit: "crossings"},
			{Name: "deep_closure_rounds_reduction_x", Value: roundsReduction, Unit: "x"},
			{Name: "deep_closure_vs_single_file_x", Value: vsSingle, Unit: "x"},
			{Name: "expand_wide_allocs_per_op", Value: allocs, Unit: "allocs"},
		},
	}
}

// E17SynthLog synthesizes run i of the E17 query workload: a chain of
// execsPerRun module executions, each consuming its predecessor's output
// artifact. Module types cycle through a fixed palette, every 16th
// execution fails (the selective predicate the pushdown exploits), and
// every 4th artifact is an image (a second, milder filter).
func E17SynthLog(i, execsPerRun int) *provenance.RunLog {
	runID := fmt.Sprintf("e17-run-%06d", i)
	l := &provenance.RunLog{}
	l.Run = provenance.Run{ID: runID, WorkflowID: fmt.Sprintf("wf-%d", i%4), Agent: fmt.Sprintf("agent-%d", i%3), Status: provenance.StatusOK}
	types := []string{"Ingest", "Clean", "Contour", "Render", "Stat", "Publish"}
	var seq uint64
	prev := fmt.Sprintf("e17-art-%06d-in", i)
	l.Artifacts = append(l.Artifacts, &provenance.Artifact{ID: prev, RunID: runID, Type: "blob"})
	for j := 0; j < execsPerRun; j++ {
		exec := fmt.Sprintf("e17-exec-%06d-%02d", i, j)
		out := fmt.Sprintf("e17-art-%06d-%02d", i, j)
		status := provenance.StatusOK
		if (i*execsPerRun+j)%16 == 0 {
			status = provenance.StatusFailed
		}
		atype := "blob"
		if j%4 == 3 {
			atype = "image"
		}
		l.Executions = append(l.Executions, &provenance.Execution{
			ID: exec, RunID: runID, ModuleID: fmt.Sprintf("m%d", j),
			ModuleType: types[j%len(types)], Status: status,
		})
		l.Artifacts = append(l.Artifacts, &provenance.Artifact{ID: out, RunID: runID, Type: atype})
		seq++
		l.Events = append(l.Events, provenance.Event{Seq: seq, RunID: runID, Kind: provenance.EventArtifactUsed, ExecutionID: exec, ArtifactID: prev})
		seq++
		l.Events = append(l.Events, provenance.Event{Seq: seq, RunID: runID, Kind: provenance.EventArtifactGen, ExecutionID: exec, ArtifactID: out})
		prev = out
	}
	return l
}

// E17Queries is the E17 multi-join PQL battery: every query joins two
// provenance tables; two carry selective predicates the streaming
// planner pushes below the join, one is an unselective count, one sorts
// and truncates. Exported so BenchmarkE17StreamingExec replays the same
// workload.
var E17Queries = []string{
	"SELECT module, artifact FROM executions JOIN gens ON executions.id = exec WHERE status = 'fail' ORDER BY artifact",
	"SELECT exec, type FROM gens JOIN artifacts ON artifact = artifacts.id WHERE type = 'image' ORDER BY exec",
	"SELECT workflow, module FROM runs JOIN executions ON runs.id = run WHERE moduleType = 'Contour' ORDER BY module LIMIT 50",
	"SELECT COUNT(*) FROM executions JOIN uses ON executions.id = exec WHERE status = 'ok'",
}

// E17 measures the streaming executor against the eager reference on a
// multi-join PQL workload plus the Datalog provenance fixpoint, over a
// 64-run synthetic store (384 executions, ~832 use/gen events). The
// eager path materializes every intermediate relation (with its hash
// index and witness sets) before filtering; the streaming path pushes
// selections below the join, pipelines non-blocking operators, and
// scans store leaves once per query. The experiment first asserts both
// paths return byte-identical results (and equal Datalog fixpoints),
// then reports median latency, allocated bytes per battery, and the two
// gated ratios: exec_streaming_speedup_x and exec_alloc_reduction_x. A
// 4-shard router rerun reports the parallel leaf-scan latency.
func E17() Result {
	const (
		nRuns       = 64
		execsPerRun = 6
	)
	mem := store.NewMemStore()
	sharded := shardedstore.NewMem(4)
	for i := 0; i < nRuns; i++ {
		l := E17SynthLog(i, execsPerRun)
		if err := mem.PutRunLog(l); err != nil {
			return errResult("E17", err)
		}
		if err := sharded.PutRunLog(E17SynthLog(i, execsPerRun)); err != nil {
			return errResult("E17", err)
		}
	}

	queries := make([]*pql.Query, len(E17Queries))
	for i, src := range E17Queries {
		q, err := pql.Parse(src)
		if err != nil {
			return errResult("E17", err)
		}
		queries[i] = q
	}

	// Equivalence first: the speedup is meaningless if the answers drift.
	var rows int
	for i, q := range queries {
		want, err := pql.ExecuteEager(mem, q)
		if err != nil {
			return errResult("E17", err)
		}
		got, err := pql.Execute(mem, q)
		if err != nil {
			return errResult("E17", err)
		}
		if fmt.Sprint(want.Columns) != fmt.Sprint(got.Columns) || fmt.Sprint(want.Rows) != fmt.Sprint(got.Rows) {
			return errResult("E17", fmt.Errorf("query %d: streaming diverged from eager", i))
		}
		gotSharded, err := pql.Execute(sharded, q)
		if err != nil {
			return errResult("E17", err)
		}
		if fmt.Sprint(want.Rows) != fmt.Sprint(gotSharded.Rows) {
			return errResult("E17", fmt.Errorf("query %d: sharded streaming diverged from eager", i))
		}
		rows += len(want.Rows)
	}

	battery := func(s store.Store, exec func(store.Store, *pql.Query) (*pql.Result, error)) func() {
		return func() {
			for _, q := range queries {
				if _, err := exec(s, q); err != nil {
					panic(err)
				}
			}
		}
	}
	eagerFn := battery(mem, pql.ExecuteEager)
	streamFn := battery(mem, pql.Execute)
	shardedFn := battery(sharded, pql.Execute)

	eager := timeRunsExact(eagerFn, 21)
	streaming := timeRunsExact(streamFn, 21)
	shardedT := timeRunsExact(shardedFn, 21)

	eagerBytes := allocBytesPerRun(eagerFn, 8)
	streamBytes := allocBytesPerRun(streamFn, 8)

	// Datalog provenance fixpoint over the same store: reference
	// evaluator (per-delta nested unification against full fact maps) vs
	// the relalg-backed semi-naive rounds. Program build cost is inside
	// both timings, so the reported ratio understates the raw join win.
	datalogRun := func(reference bool) func() int {
		return func() int {
			p, err := datalog.NewProvenanceProgram(mem)
			if err != nil {
				panic(err)
			}
			p.ReferenceEval = reference
			return p.Evaluate()
		}
	}
	refDerived := datalogRun(true)()
	strDerived := datalogRun(false)()
	if refDerived != strDerived {
		return errResult("E17", fmt.Errorf("datalog fixpoints diverged: %d (streaming) vs %d (reference)", strDerived, refDerived))
	}
	dlRef := timeRunsExact(func() { datalogRun(true)() }, 7)
	dlStream := timeRunsExact(func() { datalogRun(false)() }, 7)

	speedup := float64(eager) / float64(streaming)
	allocReduction := float64(eagerBytes) / float64(streamBytes)
	dlSpeedup := float64(dlRef) / float64(dlStream)

	var b strings.Builder
	fmt.Fprintf(&b, "%-56s %14s\n", fmt.Sprintf("measure (%d runs, %d-query join battery, %d rows)", nRuns, len(queries), rows), "value")
	fmt.Fprintf(&b, "%-56s %14s\n", "eager battery (materialize + filter)", eager)
	fmt.Fprintf(&b, "%-56s %14s\n", "streaming battery (pushdown + pipeline)", streaming)
	fmt.Fprintf(&b, "%-56s %13.1fx\n", "streaming speedup", speedup)
	fmt.Fprintf(&b, "%-56s %14d\n", "eager alloc bytes / battery", eagerBytes)
	fmt.Fprintf(&b, "%-56s %14d\n", "streaming alloc bytes / battery", streamBytes)
	fmt.Fprintf(&b, "%-56s %13.1fx\n", "alloc reduction", allocReduction)
	fmt.Fprintf(&b, "%-56s %14s\n", "streaming battery, 4-shard parallel scan", shardedT)
	fmt.Fprintf(&b, "%-56s %14s\n", fmt.Sprintf("datalog fixpoint, reference (%d derived)", refDerived), dlRef)
	fmt.Fprintf(&b, "%-56s %14s\n", "datalog fixpoint, streaming joins", dlStream)
	fmt.Fprintf(&b, "%-56s %13.1fx\n", "datalog speedup (incl. program build)", dlSpeedup)
	fmt.Fprintf(&b, "%-56s %14s\n", "streaming results == eager results", "verified")
	return Result{
		ID:    "E17",
		Title: "streaming executor: lazy iterators + pushdown vs eager materialization",
		Table: b.String(),
		Metrics: []Metric{
			{Name: "exec_eager_ns", Value: float64(eager.Nanoseconds()), Unit: "ns"},
			{Name: "exec_streaming_ns", Value: float64(streaming.Nanoseconds()), Unit: "ns"},
			{Name: "exec_streaming_speedup_x", Value: speedup, Unit: "x"},
			{Name: "exec_eager_alloc_bytes", Value: float64(eagerBytes), Unit: "B"},
			{Name: "exec_streaming_alloc_bytes", Value: float64(streamBytes), Unit: "B"},
			{Name: "exec_alloc_reduction_x", Value: allocReduction, Unit: "x"},
			{Name: "exec_streaming_sharded_ns", Value: float64(shardedT.Nanoseconds()), Unit: "ns"},
			{Name: "datalog_reference_ns", Value: float64(dlRef.Nanoseconds()), Unit: "ns"},
			{Name: "datalog_streaming_ns", Value: float64(dlStream.Nanoseconds()), Unit: "ns"},
			{Name: "datalog_streaming_speedup_x", Value: dlSpeedup, Unit: "x"},
		},
	}
}

// allocBytesPerRun reports heap bytes allocated per invocation of fn,
// averaged over n runs after a warm-up call and a forced GC.
func allocBytesPerRun(fn func(), n int) uint64 {
	fn()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < n; i++ {
		fn()
	}
	runtime.ReadMemStats(&m1)
	return (m1.TotalAlloc - m0.TotalAlloc) / uint64(n)
}

// DBProvEndToEnd exercises the dbprov cross-level lineage as a sanity line
// appended to E9's table context (kept separate for test use).
func DBProvEndToEnd() error {
	reg := engine.NewRegistry()
	dbprov.RegisterRelationalModules(reg)
	return nil
}

// --- helpers -----------------------------------------------------------------

func errResult(id string, err error) Result {
	return Result{ID: id, Title: "FAILED", Table: "error: " + err.Error() + "\n"}
}

func mustRun(e *engine.Engine, wf *workflow.Workflow) *engine.Result {
	res, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		panic(err)
	}
	if res.Status != provenance.StatusOK {
		panic(fmt.Sprintf("run failed: %v", res.Failed))
	}
	return res
}

// timeRuns returns the median duration of n invocations, rounded for
// display.
func timeRuns(fn func(), n int) time.Duration {
	return timeRunsExact(fn, n).Round(time.Microsecond)
}

// timeRunsExact is timeRuns without the microsecond rounding, for
// sub-microsecond measurements such as cache hits.
func timeRunsExact(fn func(), n int) time.Duration {
	times := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		fn()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[n/2]
}

func tempDir() (string, error) {
	return tempDirImpl()
}

func short(h string) string {
	if len(h) > 8 {
		return h[:8]
	}
	return h
}
