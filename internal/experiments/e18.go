package experiments

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collab"
	"repro/internal/collab/api"
	"repro/internal/store"
	"repro/internal/store/replica"
	"repro/internal/store/shardedstore"
)

// E18 measures WAL log-shipping replication: a 4-shard group-commit
// primary served over provd's v1 HTTP API, with 0, 1 and 2 followers
// bootstrapped from its checkpoints + logs and tailing its committed
// WAL. Two workload shapes are measured:
//
// Read capacity (the gated metric): each phase runs a mixed window per
// node — two HTTP query workers sweeping lineage closures and frontier
// expansions over the warm seed DAG, while a rate-limited writer keeps
// ingest live so every node's capacity prices in its steady-state
// replication-apply load. Nodes are measured one at a time and their
// capacities summed: the serving-capacity estimate for a fleet whose
// nodes own separate machines. (CI runs this on one core; concurrent
// windows there measure scheduler time-slicing, not capacity, and an
// unthrottled ingest firehose makes every follower re-apply the full
// write stream on the same core the measured node is serving from.)
//
// Ingest retention: paired write-only windows at full throttle, with
// and without the primary shipping its committed log to two followers'
// worth of pollers. The followers' apply loops are quiesced for this
// section — apply CPU belongs to the followers' machines, not the
// primary's — and the elided work is measured afterwards as catch-up
// drain throughput. Shipping itself is pull-based positional reads
// below the fold watermark, off the commit path, so retention should
// be ~1x.
//
// The gated metric is replica_read_scaleout_x: aggregate queries/s with
// two followers over the zero-follower baseline (~3x when a follower
// serves reads as fast as the primary). ingest_retention_x is reported
// alongside; the acceptance bar is retention within ~10%.
func E18() Result {
	const (
		nShards = 4
		writers = 4
		trials  = 3
		window  = 300 * time.Millisecond
		// Tailer poll: fast enough that followers stay within one batch of
		// the trickle ingest, slow enough that 2 followers x 4 shard
		// tailers don't saturate the primary's HTTP server with polls.
		poll = 50 * time.Millisecond
		// Gap between trickle-writer puts during read windows: keeps the
		// mixed workload's write side live (~300 runs/s) without turning
		// every follower into a full-rate apply loop during measurement.
		trickle = 2 * time.Millisecond
	)

	primDir, err := tempDir()
	if err != nil {
		return errResult("E18", err)
	}
	router, err := shardedstore.OpenWith(primDir, nShards, store.FileOptions{Durability: store.DurabilityGroup})
	if err != nil {
		return errResult("E18", err)
	}
	defer router.Close()

	// Warm seed DAG: the read workload's closure probes, fully applied on
	// every node before any window is measured.
	seedLogs, lastLayer := E14Seed(4, 16, 3)
	for _, l := range seedLogs {
		if err := router.PutRunLog(l); err != nil {
			return errResult("E18", err)
		}
	}
	// Checkpoint so followers bootstrap from a snapshot + log suffix, the
	// catch-up-bounding path, not a full log replay.
	if err := router.Checkpoint(); err != nil {
		return errResult("E18", err)
	}

	src, err := replica.NewSource(router)
	if err != nil {
		return errResult("E18", err)
	}
	repo := collab.NewRepository(router)
	primary := httptest.NewServer(collab.NewHandlerWith(repo, collab.HandlerOptions{
		Source: src,
		Status: func() api.ReplicationStatus { return src.Status(nil, nil) },
	}))
	defer primary.Close()

	var runSeq atomic.Int64
	putRun := func(w int) error {
		i := int(runSeq.Add(1))
		return router.PutRunLog(E14Run(fmt.Sprintf("e18w%d", w), i, lastLayer[(w*31+i)%len(lastLayer)]))
	}

	// measureReads runs one node's mixed read window: a throttled writer
	// keeps ingest (and so replication apply) live while two query
	// workers sweep closures over the seed DAG through this node's HTTP
	// face. Median-by-qps of `trials` windows.
	measureReads := func(c *api.Client) (float64, error) {
		var samples []float64
		// Trial -1 is a discarded warmup: it faults the node's closure
		// paths and HTTP machinery in so the measured windows compare hot
		// nodes to hot nodes.
		for trial := -1; trial < trials; trial++ {
			var stop atomic.Bool
			var queried atomic.Int64
			var firstErr atomic.Value
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(salt int) {
					defer wg.Done()
					for i := salt; !stop.Load(); i++ {
						probe := lastLayer[(i*7919+salt)%len(lastLayer)]
						if i%2 == 0 {
							if _, err := c.Lineage(probe); err != nil {
								firstErr.Store(err)
								return
							}
						} else {
							if _, err := c.Expand([]string{probe}, "up"); err != nil {
								firstErr.Store(err)
								return
							}
						}
						queried.Add(1)
					}
				}(w)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					if err := putRun(0); err != nil {
						firstErr.Store(err)
						return
					}
					time.Sleep(trickle)
				}
			}()
			time.Sleep(window)
			stop.Store(true)
			wg.Wait()
			if err, _ := firstErr.Load().(error); err != nil {
				return 0, err
			}
			if trial >= 0 {
				samples = append(samples, float64(queried.Load())/window.Seconds())
			}
		}
		return median(samples), nil
	}

	// ingestWindow runs one full-throttle write-only window against the
	// primary and reports runs/s.
	ingestWindow := func() (float64, error) {
		var stop atomic.Bool
		var ingested atomic.Int64
		var firstErr atomic.Value
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for !stop.Load() {
					if err := putRun(w); err != nil {
						firstErr.Store(err)
						return
					}
					ingested.Add(1)
				}
			}(w)
		}
		time.Sleep(window)
		stop.Store(true)
		wg.Wait()
		if err, _ := firstErr.Load().(error); err != nil {
			return 0, err
		}
		return float64(ingested.Load()) / window.Seconds(), nil
	}

	// openFollower bootstraps a fresh follower off the primary, catches it
	// up synchronously, starts its tailer, and serves it over HTTP.
	type node struct {
		f   *replica.Follower
		srv *httptest.Server
	}
	openFollower := func() (*node, error) {
		dir, err := tempDir()
		if err != nil {
			return nil, err
		}
		f, err := replica.Open(replica.Options{Dir: dir, Primary: primary.URL, Poll: poll})
		if err != nil {
			return nil, err
		}
		if err := f.CatchUp(); err != nil {
			f.Close()
			return nil, err
		}
		f.Start()
		srv := httptest.NewServer(collab.NewHandlerWith(collab.NewRepository(f.Store()), collab.HandlerOptions{
			ReadOnly: true,
			Lag:      f.Lag,
			Status:   f.Status,
		}))
		return &node{f: f, srv: srv}, nil
	}

	clients := []*api.Client{api.NewClient(primary.URL, nil)}
	var qps [3]float64
	var nodes []*node
	defer func() {
		for _, n := range nodes {
			n.srv.Close()
			n.f.Close()
		}
	}()
	for phase := 0; phase <= 2; phase++ {
		if phase > 0 {
			// A mid-stream checkpoint before each join: the new follower
			// bootstraps across a checkpoint boundary, not from offset 0.
			if err := router.Checkpoint(); err != nil {
				return errResult("E18", err)
			}
			n, err := openFollower()
			if err != nil {
				return errResult("E18", err)
			}
			nodes = append(nodes, n)
			clients = append(clients, api.NewClient(n.srv.URL, nil))
		}
		for _, c := range clients {
			q, err := measureReads(c)
			if err != nil {
				return errResult("E18", err)
			}
			qps[phase] += q
		}
	}

	// Ingest retention: write-only windows with and without the primary
	// shipping its committed log to two followers' worth of pollers. The
	// followers' tailers are quiesced and replaced (in the shipping
	// windows) by drain pollers that pull the stream over HTTP at the
	// tailer cadence but discard the bytes: the primary is charged its
	// real replication cost — serving record-aligned chunk reads — while
	// the apply CPU, which in production runs on the followers' own
	// machines, isn't co-scheduled onto the one core this host gives the
	// primary. The elided apply work is measured on its own below as
	// catch-up drain throughput. Baseline and shipping trials interleave
	// so store growth across the section drifts both sides equally.
	for _, n := range nodes {
		n.f.Stop()
	}
	runsBefore := runSeq.Load()
	var drainErr atomic.Value
	// startDrain spins up one poller per follower at the current committed
	// positions and returns a stop-and-wait function.
	startDrain := func() (func(), error) {
		rs, err := clients[0].ReplicationStatus()
		if err != nil {
			return nil, err
		}
		var drainStop atomic.Bool
		var drainWG sync.WaitGroup
		for range nodes {
			cursors := make([]int64, len(rs.Shards))
			for i, sp := range rs.Shards {
				cursors[i] = sp.Committed
			}
			drainWG.Add(1)
			go func(cursors []int64) {
				defer drainWG.Done()
				c := api.NewClient(primary.URL, nil)
				for !drainStop.Load() {
					for shard := range cursors {
						data, _, err := c.StreamLog(shard, cursors[shard], 1<<20)
						if err != nil {
							drainErr.Store(err)
							return
						}
						cursors[shard] += int64(len(data))
					}
					time.Sleep(poll)
				}
			}(cursors)
		}
		return func() { drainStop.Store(true); drainWG.Wait() }, nil
	}
	shippingWindow := func() (float64, error) {
		stopDrain, err := startDrain()
		if err != nil {
			return 0, err
		}
		r, err := ingestWindow()
		stopDrain()
		if err != nil {
			return 0, err
		}
		if err, _ := drainErr.Load().(error); err != nil {
			return 0, err
		}
		return r, nil
	}
	var baseSamples, replSamples []float64
	for trial := 0; trial < trials+1; trial++ {
		// Alternate within-pair order so a systematic first-window
		// advantage (GC, page-cache state) cancels rather than biasing
		// one side.
		first, second := ingestWindow, shippingWindow
		if trial%2 == 1 {
			first, second = second, first
		}
		a, err := first()
		if err != nil {
			return errResult("E18", err)
		}
		b, err := second()
		if err != nil {
			return errResult("E18", err)
		}
		if trial%2 == 1 {
			a, b = b, a
		}
		baseSamples = append(baseSamples, a)
		replSamples = append(replSamples, b)
	}
	rpsBase, rpsRepl := median(baseSamples), median(replSamples)

	// Catch-up drain: each quiesced follower now applies the retention
	// windows' backlog through the same replay path its tailer uses.
	backlog := runSeq.Load() - runsBefore
	var drainSecs float64
	for _, n := range nodes {
		start := time.Now()
		if err := n.f.CatchUp(); err != nil {
			return errResult("E18", err)
		}
		drainSecs += time.Since(start).Seconds()
	}
	catchup := float64(backlog) * float64(len(nodes)) / drainSecs

	// Verify convergence: identical closure answers for a probe on every
	// node once the followers drain.
	probeWant, err := router.Closure(lastLayer[0], store.Up)
	if err != nil {
		return errResult("E18", err)
	}
	for i, n := range nodes {
		if err := n.f.CatchUp(); err != nil {
			return errResult("E18", err)
		}
		got, err := n.f.Store().Closure(lastLayer[0], store.Up)
		if err != nil {
			return errResult("E18", err)
		}
		if len(got) != len(probeWant) {
			return errResult("E18", fmt.Errorf("follower %d closure has %d nodes, primary %d", i+1, len(got), len(probeWant)))
		}
	}

	scaleout := qps[2] / qps[0]
	retention := rpsRepl / rpsBase
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %16s %12s\n", "followers", "queries/s", "read scale")
	for phase := 0; phase <= 2; phase++ {
		fmt.Fprintf(&b, "%-12d %16.0f %11.2fx\n", phase, qps[phase], qps[phase]/qps[0])
	}
	fmt.Fprintf(&b, "%-42s %11.2fx\n", "read scale-out (2 followers / unreplicated)", scaleout)
	fmt.Fprintf(&b, "%-42s %11.0f\n", "ingest runs/s unreplicated", rpsBase)
	fmt.Fprintf(&b, "%-42s %11.0f\n", "ingest runs/s with 2 tailing followers", rpsRepl)
	fmt.Fprintf(&b, "%-42s %11.2fx\n", "ingest retention under replication", retention)
	fmt.Fprintf(&b, "%-42s %11.0f\n", "follower catch-up drain runs/s", catchup)
	fmt.Fprintf(&b, "%-42s %12s\n", "follower closures == primary closures", "verified")
	fmt.Fprintf(&b, "reads: 2 HTTP query workers per node over a %d-shard group-commit primary, ingest live at ~1/%s per run (node-at-a-time windows, capacities summed); ingest: %d unthrottled writers; median of %d x %s windows\n",
		nShards, trickle, writers, trials, window)
	return Result{
		ID:    "E18",
		Title: "log-shipping replication: follower read scale-out and primary ingest retention",
		Table: b.String(),
		Metrics: []Metric{
			{Name: "query_mixed_per_sec_followers0", Value: qps[0], Unit: "q/s"},
			{Name: "query_mixed_per_sec_followers1", Value: qps[1], Unit: "q/s"},
			{Name: "query_mixed_per_sec_followers2", Value: qps[2], Unit: "q/s"},
			{Name: "ingest_unreplicated_runs_per_sec", Value: rpsBase, Unit: "runs/s"},
			{Name: "ingest_two_followers_runs_per_sec", Value: rpsRepl, Unit: "runs/s"},
			{Name: "follower_catchup_runs_per_sec", Value: catchup, Unit: "runs/s"},
			{Name: "replica_read_scaleout_x", Value: scaleout, Unit: "x"},
			{Name: "ingest_retention_x", Value: retention, Unit: "x"},
		},
	}
}

// median returns the median of xs (xs is reordered in place).
func median(xs []float64) float64 {
	for i := range xs {
		for j := i + 1; j < len(xs); j++ {
			if xs[j] < xs[i] {
				xs[i], xs[j] = xs[j], xs[i]
			}
		}
	}
	return xs[len(xs)/2]
}
