GO ?= go
BENCH_DIR ?= bench-results
BASELINE_DIR ?= bench-results/baseline

.PHONY: build test vet fmt-check staticcheck test-race bench bench-smoke bench-json bench-gate bench-json-gate bench-baseline chaos ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fail when any file is not gofmt-clean, listing the offenders.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test-race:
	$(GO) test -race ./...

# Static analysis beyond go vet (checks scoped by staticcheck.conf). CI
# installs a pinned version; locally the target is a no-op with a notice
# when the binary is absent, since this repo builds offline.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

# Run the testing.B benchmark suite (one benchmark per experiment, plus the
# E4b batch-vs-per-edge and E13 closure-cache comparisons).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One-iteration benchmark smoke for CI: proves the lineage benchmark paths
# still run without paying full measurement time.
bench-smoke:
	$(GO) test -run '^$$' -bench E4b -benchtime 1x .

# Run the full experiment suite and write machine-readable BENCH_<ID>.json
# files so successive PRs can track a perf trajectory. CI uploads these as
# build artifacts.
bench-json:
	$(GO) run ./cmd/provbench -json $(BENCH_DIR)

# Bench regression gate: re-run the gated experiments and fail when a gated
# metric (machine-independent speedup ratios, e.g. E13's warm-closure
# speedup or E14's mixed-load ingest speedup) regresses beyond its
# tolerance against the committed baseline in $(BASELINE_DIR).
bench-gate:
	$(GO) run ./cmd/provbench -e E13,E14,E15,E16,E17,E18,E19,E20,E21 -check $(BASELINE_DIR)

# Refresh the committed bench baseline deliberately (review the diff before
# committing: this is the reference future CI runs gate against).
bench-baseline:
	$(GO) run ./cmd/provbench -e E13,E14,E15,E16,E17,E18,E19,E20,E21 -json $(BASELINE_DIR)

# Seeded chaos suite under the race detector: fault-injected replication,
# flapping partitions, promotion while partitioned. Deterministic fault
# schedules (fixed seeds), so a failure here is reproducible, not flaky.
chaos:
	$(GO) test -race -run 'TestChaos|TestPromotion|TestNodeEpoch' ./internal/store/replica/
	$(GO) test -race ./internal/faultinject/

# CI's combined bench step: one full-suite run that both writes the
# BENCH_*.json artifacts and applies the regression gate, so the gated
# experiments are not executed twice.
bench-json-gate:
	$(GO) run ./cmd/provbench -json $(BENCH_DIR) -check $(BASELINE_DIR)

# Everything the CI workflow gates on, runnable locally.
ci: fmt-check build vet staticcheck test-race chaos bench-smoke bench-gate

clean:
	find $(BENCH_DIR) -maxdepth 1 -name 'BENCH_*.json' -delete
