GO ?= go
BENCH_DIR ?= bench-results

.PHONY: build test vet fmt-check test-race bench bench-smoke bench-json ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fail when any file is not gofmt-clean, listing the offenders.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test-race:
	$(GO) test -race ./...

# Run the testing.B benchmark suite (one benchmark per experiment, plus the
# E4b batch-vs-per-edge and E13 closure-cache comparisons).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One-iteration benchmark smoke for CI: proves the lineage benchmark paths
# still run without paying full measurement time.
bench-smoke:
	$(GO) test -run '^$$' -bench E4b -benchtime 1x .

# Run the full experiment suite and write machine-readable BENCH_<ID>.json
# files so successive PRs can track a perf trajectory. CI uploads these as
# build artifacts.
bench-json:
	$(GO) run ./cmd/provbench -json $(BENCH_DIR)

# Everything the CI workflow gates on, runnable locally.
ci: fmt-check build vet test-race bench-smoke

clean:
	rm -rf $(BENCH_DIR)
