GO ?= go
BENCH_DIR ?= bench-results

.PHONY: build test vet bench bench-json clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Run the testing.B benchmark suite (one benchmark per experiment, plus the
# E4b batch-vs-per-edge lineage comparison).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Run the full experiment suite and write machine-readable BENCH_<ID>.json
# files so successive PRs can track a perf trajectory.
bench-json:
	$(GO) run ./cmd/provbench -json $(BENCH_DIR)

clean:
	rm -rf $(BENCH_DIR)
