// Command classroom demonstrates "provenance in education" (§2.3): an
// instructor's live exploration is recorded — every variant, run and
// remark — then exported as a handout, and a student's assignment is
// graded by provenance replay.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/education"
	"repro/internal/evolution"
	"repro/internal/workloads"
)

func main() {
	ctx := context.Background()
	sys := core.NewSystem(core.Options{Agent: "prof", Workers: 1})
	workloads.RegisterAll(sys.Registry)

	class, err := education.NewSession(sys, "CS6960 Scientific Visualization",
		"prof", "exploring isosurfaces", workloads.MedicalImaging())
	if err != nil {
		log.Fatal(err)
	}

	// The lecture, as it happens.
	run1, err := class.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	class.Note("isovalue 57 lands on the skull: dense bone")

	if _, err := class.Edit("what does a lower isovalue show?",
		evolution.SetParamAction("contour", "isovalue", "45")); err != nil {
		log.Fatal(err)
	}
	run2, err := class.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	class.Note("45 pulls in soft tissue — compare the two renders")

	// A student asks why the outputs differ; provenance answers.
	explanation, err := class.ExplainRuns(run1, run2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== student question: why do these runs differ? ===")
	fmt.Print(explanation)

	// After class: export everything the students need.
	handout, err := class.ExportHandout()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== handout ===\ncourse: %s\nsteps recorded: %d\nruns with provenance: %d\n",
		handout.Course, len(handout.Steps), len(handout.Runs))
	for _, st := range handout.Steps {
		fmt.Printf("  %2d %-7s v%-3d %s %s\n", st.Seq, st.Kind, st.Version, st.RunID, st.Note)
	}

	// Assignment: a student explores on their own and submits with full
	// provenance; grading replays it.
	student, err := education.NewSession(sys, "CS6960", "student-17",
		"assignment 2", workloads.MedicalImaging())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := student.Edit("my pick", evolution.SetParamAction("contour", "isovalue", "80")); err != nil {
		log.Fatal(err)
	}
	finalRun, err := student.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	ok, why, err := education.GradeSubmission(ctx, sys, student, finalRun)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== grading student-17 ===\naccepted=%v (%s)\n", ok, why)
}
