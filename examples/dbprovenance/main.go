// Command dbprovenance demonstrates §2.4's open problem made concrete:
// connecting database and workflow provenance. A pipeline selects from a
// gene database, joins with a study database, and aggregates; asking where
// one output number came from yields an answer that spans both levels —
// the exact witnessing tuples AND the module executions that carried them.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dbprov"
	"repro/internal/relalg"
	"repro/internal/workflow"
)

func main() {
	sys := core.NewSystem(core.Options{Agent: "dbprov-demo", Workers: 1})
	dbprov.RegisterRelationalModules(sys.Registry)

	genes, err := dbprov.SourceModule("genesDB", dbprov.Source{
		Name:   "genes",
		Schema: []string{"gene", "organism"},
		Rows: [][]relalg.Val{
			{"brca1", "human"}, {"tp53", "human"}, {"sonic", "mouse"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	studies, err := dbprov.SourceModule("studiesDB", dbprov.Source{
		Name:   "studies",
		Schema: []string{"g", "study"},
		Rows: [][]relalg.Val{
			{"brca1", "S1"}, {"tp53", "S1"}, {"tp53", "S2"}, {"sonic", "S3"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	wf := workflow.New("analysis", "db+workflow analysis")
	mods := []*workflow.Module{
		genes, studies,
		{
			ID: "selectHuman", Name: "selectHuman", Type: "RelSelect",
			Params:  map[string]string{"column": "organism", "equals": "human"},
			Inputs:  []workflow.Port{{Name: "in", Type: dbprov.TypeRelation}},
			Outputs: []workflow.Port{{Name: "out", Type: dbprov.TypeRelation}},
		},
		{
			ID: "joinStudies", Name: "joinStudies", Type: "RelJoin",
			Params: map[string]string{"leftCol": "gene", "rightCol": "g"},
			Inputs: []workflow.Port{{Name: "left", Type: dbprov.TypeRelation},
				{Name: "right", Type: dbprov.TypeRelation}},
			Outputs: []workflow.Port{{Name: "out", Type: dbprov.TypeRelation}},
		},
		{
			ID: "countPerStudy", Name: "countPerStudy", Type: "RelGroupBy",
			Params:  map[string]string{"key": "study", "agg": "count"},
			Inputs:  []workflow.Port{{Name: "in", Type: dbprov.TypeRelation}},
			Outputs: []workflow.Port{{Name: "out", Type: dbprov.TypeRelation}},
		},
	}
	for _, m := range mods {
		if err := wf.AddModule(m); err != nil {
			log.Fatal(err)
		}
	}
	connect := func(sm, sp, dm, dp string) {
		if err := wf.Connect(sm, sp, dm, dp); err != nil {
			log.Fatal(err)
		}
	}
	connect("genesDB", "out", "selectHuman", "in")
	connect("selectHuman", "out", "joinStudies", "left")
	connect("studiesDB", "out", "joinStudies", "right")
	connect("joinStudies", "out", "countPerStudy", "in")

	res, runLog, err := sys.Run(context.Background(), wf, nil)
	if err != nil {
		log.Fatal(err)
	}
	v, err := res.Output("countPerStudy", "out")
	if err != nil {
		log.Fatal(err)
	}
	rel := v.Data.(*relalg.Relation)
	fmt.Println("=== result relation (with tuple-level why-provenance) ===")
	fmt.Print(rel.String())

	// The unified question: where did the S1 count come from?
	u, err := dbprov.TupleLineage(res, runLog, wf, "countPerStudy", "study", "S1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== unified lineage of the tuple (study=S1) ===")
	fmt.Printf("tuple level  — witnessing base tuples: %v\n", u.BaseTuples)
	fmt.Printf("workflow level — module path: %v\n", u.ModulePath)
	fmt.Printf("sources actually contributing: %v\n", u.RelevantSources())
	fmt.Println("\n(note: the workflow level alone would blame every upstream module;")
	fmt.Println(" the tuple level narrows blame to the exact rows — the paper's point.)")
}
