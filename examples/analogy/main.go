// Command analogy reproduces Figure 2 of the paper: refining workflows by
// analogy. The user selects a pair of workflows capturing a change —
// "download a file from the Web and create a simple visualization" versus
// the same workflow with the visualization smoothed — and the system
// applies the same change to a different workflow whose surrounding
// modules do not match exactly.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/analogy"
	"repro/internal/core"
	"repro/internal/vis"
	"repro/internal/workloads"
)

func main() {
	// The analogy template: (a) original, (b) with smoothing inserted.
	wa := workloads.DownloadAndRender()
	wb := workloads.DownloadAndRenderSmoothed()

	// The target: the Figure 1 medical-imaging workflow. Its data source
	// is a FileReader (not a Download) and it has an extra histogram
	// branch — the surroundings differ, as in the figure's caption.
	target := workloads.MedicalImaging()

	fmt.Println("=== template pair ===")
	d := analogy.ComputeDiff(wa, wb)
	fmt.Printf("change to transfer: +%d modules, -%d connections, +%d connections (anchors: %v)\n",
		len(d.AddedModules), len(d.RemovedConns), len(d.AddedConns), d.Anchors)

	fmt.Println("\n=== target before ===")
	before, err := vis.WorkflowASCII(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(before)

	res, err := analogy.Refine(wa, wb, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== target after analogy ===")
	after, err := vis.WorkflowASCII(res.Workflow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(after)
	fmt.Printf("\nmodule correspondence found by the system: %v\n", res.Mapping)

	// The refined workflow is not just structurally valid — it runs.
	sys := core.NewSystem(core.Options{Agent: "analogy-demo"})
	workloads.RegisterAll(sys.Registry)
	run, _, err := sys.Run(context.Background(), res.Workflow, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrefined workflow executed: status=%s, smoothed surface present=%v\n",
		run.Status, run.Artifacts["smooth.surface"] != "")

	smoothed, err := run.Output("render", "image")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== smoothed isosurface rendering ===")
	fmt.Print(smoothed.Data.(string))
}
