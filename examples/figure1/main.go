// Command figure1 reproduces Figure 1 of the paper: the medical-imaging
// workflow whose prospective provenance (the recipe) derives two data
// products — a histogram of a CT volume's scalar values and an isosurface
// visualization — and whose retrospective provenance (the execution log)
// records how one particular run derived them, including user annotations
// and the defective-CT-scanner invalidation scenario.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/vis"
	"repro/internal/workloads"
)

func main() {
	sys := core.NewSystem(core.Options{Agent: "juliana",
		Environment: map[string]string{"host": "vis-cluster-07", "os": "linux"}})
	workloads.RegisterAll(sys.Registry)

	wf := workloads.MedicalImaging()

	// ---- Left panel: prospective provenance (the workflow definition).
	fmt.Println("=== prospective provenance (workflow definition) ===")
	ascii, err := vis.WorkflowASCII(wf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ascii)
	stats := wf.Stat()
	fmt.Printf("modules=%d connections=%d parameters=%d depth=%d\n\n",
		stats.Modules, stats.Connections, stats.Params, stats.Depth)

	// ---- Execute the run.
	res, runLog, err := sys.Run(context.Background(), wf, nil)
	if err != nil {
		log.Fatal(err)
	}
	// User-defined provenance: the yellow boxes of the figure.
	sys.Annotate(res.Artifacts["render.image"], provenance.KindArtifact,
		"note", "isovalue 57 isolates the skull nicely")
	runLog, err = sys.Collector.Log(res.RunID)
	if err != nil {
		log.Fatal(err)
	}

	// ---- Right panel: retrospective provenance (the execution log).
	fmt.Println("=== retrospective provenance (execution log) ===")
	fmt.Print(vis.RunASCII(runLog))

	// ---- The two data products.
	plot, err := res.Output("histogram", "plot")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== head-hist (histogram of scalar values) ===")
	fmt.Print(plot.Data.(string))

	image, err := res.Output("render", "image")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== head-iso (isosurface rendering) ===")
	fmt.Print(image.Data.(string))

	// ---- Causality queries on the captured provenance.
	cg, err := sys.CausalGraph(res.RunID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== causality ===")
	recipe, err := cg.ReproductionRecipe(res.Artifacts["render.image"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("to reproduce the isosurface image, re-run: %v\n", recipe.ModuleIDs)

	// The defective-scanner scenario from §2.2: invalidate everything
	// derived from the CT volume.
	invalidated := cg.InvalidatedArtifacts(res.Artifacts["reader.data"])
	fmt.Printf("if head.120.vtk's scanner is defective, recall %d artifacts: %v\n",
		len(invalidated), invalidated)

	shared := cg.DerivedFromSameRawData(res.Artifacts["histogram.plot"], res.Artifacts["render.image"])
	fmt.Printf("histogram and isosurface share raw ancestors: %v (both derive from the in-run grid)\n", shared)

	// ---- DOT export for real visualization.
	fmt.Println("\n=== graphviz (first lines) ===")
	dot, err := vis.ProvenanceDOT(runLog)
	if err != nil {
		log.Fatal(err)
	}
	for i, line := range splitLines(dot, 6) {
		fmt.Printf("%d: %s\n", i, line)
	}
}

func splitLines(s string, n int) []string {
	var out []string
	start := 0
	for i := 0; i < len(s) && len(out) < n; i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
