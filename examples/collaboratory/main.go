// Command collaboratory demonstrates the social-data-analysis scenario of
// §2.3: a science collaboratory where a community shares workflows and
// provenance, searches them, receives recommendations, and queries lineage
// over HTTP — the components the paper argues SDA sites for science need.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"repro/internal/collab"
	"repro/internal/store"
)

func main() {
	repo := collab.NewRepository(store.NewMemStore())

	// Synthesize a community: 15 users publishing 3 runs each over the
	// five base pipelines, with preferential attachment.
	users, err := collab.SynthesizeCommunity(repo, collab.CommunityOptions{
		Seed: 2008, Users: 15, RunsEach: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := repo.Stat()
	fmt.Printf("collaboratory: %d workflows, %d published runs, %d users\n\n",
		st.Workflows, st.Runs, st.Users)

	// Full-text search over names, descriptions, tags, module types.
	fmt.Println("search 'visualization':")
	for _, hit := range repo.Search("visualization", 5) {
		e, err := repo.Peek(hit.WorkflowID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s score=%.2f  %s\n", hit.WorkflowID, hit.Score, e.Description)
	}

	// Recommendation by collaborative filtering over run histories.
	fmt.Println("\nrecommendations:")
	shown := 0
	for _, u := range users {
		recs := repo.Recommend(u, 2)
		if len(recs) == 0 {
			continue
		}
		fmt.Printf("  %s -> ", u)
		for _, r := range recs {
			fmt.Printf("%s (%.2f) ", r.WorkflowID, r.Score)
		}
		fmt.Println()
		shown++
		if shown == 5 {
			break
		}
	}

	// The HTTP face: cmd/provd serves exactly this handler; here we use a
	// test server so the example is self-contained.
	srv := httptest.NewServer(collab.NewHandler(repo))
	defer srv.Close()

	fmt.Println("\nHTTP API:")
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	var stats collab.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("  GET /stats -> %+v\n", stats)

	// Lineage of a shared run's final artifact, over the wire.
	runs := repo.RunsOf("medimg")
	if len(runs) == 0 {
		runs = repo.RunsOf("medimg-smooth")
	}
	if len(runs) > 0 {
		l, err := repo.Store().RunLog(runs[0])
		if err != nil {
			log.Fatal(err)
		}
		target := l.Artifacts[len(l.Artifacts)-1].ID
		resp, err := http.Get(srv.URL + "/lineage?id=" + target)
		if err != nil {
			log.Fatal(err)
		}
		var lineage []string
		if err := json.NewDecoder(resp.Body).Decode(&lineage); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("  GET /lineage?id=%s -> %d upstream entities\n", target, len(lineage))
	}

	// PQL across every run anyone published.
	resp, err = http.Get(srv.URL + "/query?q=SELECT%20moduleType,%20status%20FROM%20executions%20WHERE%20status%20%3D%20%27failed%27")
	if err != nil {
		log.Fatal(err)
	}
	var qres struct{ Rows [][]string }
	if err := json.NewDecoder(resp.Body).Decode(&qres); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("  GET /query (failed executions) -> %d rows\n", len(qres.Rows))
}
