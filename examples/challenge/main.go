// Command challenge reproduces the Provenance Challenge setting the paper
// describes in §2.4: three workflow systems execute stages of the fMRI
// brain-atlas pipeline, each records provenance in its own native format
// (Kepler-style events, Taverna-style RDF, VisTrails-style XML), the
// formats are mapped to the Open Provenance Model and integrated — and
// only the integrated graph can answer cross-system lineage questions.
package main

import (
	"fmt"
	"log"

	"repro/internal/interop"
	"repro/internal/opm"
)

func main() {
	runs, err := interop.RunPipeline(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== three systems, one experiment ===")
	for _, r := range runs {
		fmt.Printf("  %-14s executed %d module(s): workflow %s\n",
			r.System, len(r.Log.Executions), r.Log.Run.WorkflowID)
	}

	graphs, err := interop.SystemGraphs(runs)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"kepler-sim", "taverna-sim", "vistrails-sim"}
	fmt.Println("\n=== native formats mapped to OPM ===")
	for i, g := range graphs {
		st := g.Stat()
		fmt.Printf("  %-14s %d artifacts, %d processes, %d used, %d wasGeneratedBy\n",
			names[i], st.Artifacts, st.Processes,
			st.EdgesByKind[opm.Used], st.EdgesByKind[opm.WasGeneratedBy])
	}

	merged, err := interop.Integrate(graphs...)
	if err != nil {
		log.Fatal(err)
	}
	st := merged.Stat()
	fmt.Printf("\n=== integrated graph (artifacts unified by content hash) ===\n")
	fmt.Printf("  %d artifacts, %d processes, %d accounts\n",
		st.Artifacts, st.Processes, st.Accounts)

	fmt.Println("\n=== challenge queries: answerable? ===")
	fmt.Printf("%-14s", "graph")
	for _, q := range interop.Suite() {
		fmt.Printf(" %-3s", q.ID)
	}
	fmt.Println(" total")
	report := func(name string, g *opm.Graph) {
		r := interop.RunSuite(name, g)
		fmt.Printf("%-14s", name)
		for _, q := range interop.Suite() {
			mark := " - "
			if r.Answerable[q.ID] {
				mark = "yes"
			}
			fmt.Printf(" %-3s", mark)
		}
		fmt.Printf(" %d/%d\n", r.Answered, r.Total)
	}
	for i, g := range graphs {
		report(names[i], g)
	}
	report("integrated", merged)

	fmt.Println("\n=== the cross-system answer itself (Q8: who contributed?) ===")
	for _, q := range interop.Suite() {
		if q.ID != "Q8" {
			continue
		}
		answer, ok := q.Run(merged)
		fmt.Printf("answerable=%v agents=%v\n", ok, answer)
	}
	// The integrated graph round-trips through standard OPM XML.
	data, err := opm.EncodeXML(merged)
	if err != nil {
		log.Fatal(err)
	}
	back, err := opm.DecodeXML(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nintegrated graph serialized to OPM XML: %d bytes, round-trips to %d nodes\n",
		len(data), len(back.Nodes))
}
