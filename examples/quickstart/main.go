// Command quickstart is the smallest end-to-end tour of the library:
// build a workflow, execute it with provenance capture, and ask the
// questions the paper opens with — who created this data product, with
// what process, and what must be recalled if an input goes bad.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workflow"
)

func main() {
	sys := core.NewSystem(core.Options{Agent: "quickstart-user"})

	// 1. Register a module implementation: type "WordCount" counts words.
	sys.Registry.Register("WordCount", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		text, err := ec.Input("text")
		if err != nil {
			return nil, err
		}
		n := 0
		inWord := false
		for _, r := range text.Data.(string) {
			if r == ' ' || r == '\n' {
				inWord = false
			} else if !inWord {
				inWord = true
				n++
			}
		}
		return map[string]engine.Value{"count": {Type: "int", Data: n}}, nil
	})
	sys.Registry.Register("Format", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		count, err := ec.Input("count")
		if err != nil {
			return nil, err
		}
		msg := fmt.Sprintf("the document has %d words", count.Data.(int))
		return map[string]engine.Value{"report": {Type: "string", Data: msg}}, nil
	})

	// 2. Describe the dataflow: count -> format.
	wf := workflow.NewBuilder("wordcount", "word-count demo").
		Module("count", "WordCount", workflow.In("text", "string"), workflow.Out("count", "int")).
		Module("format", "Format", workflow.In("count", "int"), workflow.Out("report", "string")).
		Connect("count", "count", "format", "count").
		MustBuild()

	// 3. Execute with an external raw input; provenance is captured and
	// stored automatically.
	res, runLog, err := sys.Run(context.Background(), wf, map[string]engine.Value{
		"count.text": {Type: "string", Data: "provenance is the audit trail of a data product"},
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := res.Output("format", "report")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result: %s\n\n", report.Data)

	// 4. Ask provenance questions.
	fmt.Printf("run %s recorded %d executions, %d artifacts, %d events\n",
		runLog.Run.ID, len(runLog.Executions), len(runLog.Artifacts), len(runLog.Events))

	reportArt := res.Artifacts["format.report"]
	lineage, err := sys.Lineage(reportArt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlineage of %s (who/what created it):\n", reportArt)
	for _, id := range lineage {
		fmt.Printf("  %s\n", id)
	}

	// The raw text artifact is the one with no generator.
	var rawInput string
	for _, a := range runLog.Artifacts {
		if runLog.GeneratorOf(a.ID) == nil {
			rawInput = a.ID
		}
	}
	invalidated, err := sys.InvalidatedArtifacts(rawInput)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nif raw input %s were recalled, these products are invalidated:\n", rawInput)
	for _, id := range invalidated {
		fmt.Printf("  %s\n", id)
	}

	// 5. Declarative queries over the same provenance.
	table, err := sys.Query("SELECT module, status FROM executions ORDER BY module")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPQL> SELECT module, status FROM executions ORDER BY module\n%s", table)
}
