// Command provd serves the collaboratory's HTTP API: workflow sharing,
// full-text search, run-log retrieval, lineage/dependents closure queries
// and batch frontier expansion (/expand), PQL, and recommendations (see
// internal/collab for routes). Closure endpoints run on the storage
// layer's pushed-down batch traversal, so they cost O(hops) store
// operations on every backend — including the durable file store.
//
// Usage:
//
//	provd -addr :8080                      # empty repository
//	provd -addr :8080 -seed 7 -users 20    # with a synthetic community
//	provd -store /var/lib/provd            # file-backed store
//	provd -durability group                # group-commit WAL durable ingest
//	provd -checkpoint-every 256            # periodic snapshots for warm restarts
//	provd -cache                           # incremental closure cache
//	provd -shards 4                        # hash-partitioned sharded store
//
// With -cache the store is wrapped in the incrementally maintained closure
// cache (internal/store/closurecache): /lineage and /dependents hit
// memoized closures, /expand hits memoized frontiers, and each published
// run patches the affected entries at ingest instead of flushing them.
//
// With -shards N the store is partitioned across N hash-routed shards
// (internal/store/shardedstore): published runs route whole to a home
// shard (ingests of different runs proceed under per-shard locking),
// /expand scatter/gathers one frontier across the shards in parallel, and
// /lineage and /dependents run the closure pushdown — each shard computes
// its local fixpoint and only cross-shard frontiers are exchanged between
// rounds. Combined with -store DIR the shards are file-backed under
// DIR/shard-000…; a directory must be reopened with the shard count it was
// written with (mismatches are rejected loudly). -cache wraps the sharded
// router unchanged. -trace-rounds logs each pushdown closure's rounds
// executed and per-round frontier sizes, so round-count regressions are
// observable in production, not just in the bench.
//
// With -store DIR, -durability selects the ingest guarantee — none,
// fsync (one fsync per published run) or group (write-ahead group commit:
// concurrent publishes coalesce into batches sharing one fsync; the
// durable mode meant for this daemon's multi-writer ingest) — and
// -checkpoint-every N snapshots the folded store state plus the closure
// cache's entries every N publishes, so a daemon restart replays only the
// log suffix and serves warm closures immediately instead of recomputing
// them cold.
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/internal/collab"
	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/store/closurecache"
	"repro/internal/store/shardedstore"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		storeDir    = flag.String("store", "", "directory for a durable file store (default: in-memory)")
		cache       = flag.Bool("cache", false, "maintain closures incrementally across ingests (closure cache)")
		shards      = flag.Int("shards", 1, "partition the store across N hash-routed shards")
		durability  = flag.String("durability", "none", "ingest durability with -store: none, fsync, or group (group-commit WAL)")
		ckptEvery   = flag.Int("checkpoint-every", 0, "with -store: snapshot the store (and cache) every N published runs")
		traceRounds = flag.Bool("trace-rounds", false, "log each sharded closure's pushdown rounds and per-round frontier sizes")
		explain     = flag.Bool("explain", false, "log each /query's executed plan: join order, per-operator rows, scan parallelism, allocations")
		seed        = flag.Int64("seed", 0, "synthesize a community with this seed (0: empty)")
		users       = flag.Int("users", 10, "synthetic community size")
		runsEach    = flag.Int("runs", 3, "synthetic runs published per user")
	)
	flag.Parse()

	dur, err := store.ParseDurability(*durability)
	if err != nil {
		log.Fatalf("provd: %v", err)
	}
	if err := (core.Options{StoreDir: *storeDir, Durability: dur, CheckpointEvery: *ckptEvery}).ValidatePersistence(); err != nil {
		log.Fatalf("provd: %v", err)
	}
	var trace func(shardedstore.ClosureTrace)
	if *traceRounds {
		trace = func(t shardedstore.ClosureTrace) {
			log.Printf("provd: closure(%s, %s): %d rounds, %d cross-shard crossings, %d nodes, per-round frontier sizes %v",
				t.Seed, t.Dir, t.Rounds, t.Crossings, t.Nodes, t.Probes)
		}
	}
	var st store.Store
	switch {
	case *storeDir != "":
		persistent, closer, err := core.OpenPersistentStore(core.Options{
			StoreDir:           *storeDir,
			Shards:             *shards,
			Durability:         dur,
			CheckpointEvery:    *ckptEvery,
			EnableClosureCache: *cache,
			TraceRounds:        trace,
		})
		if err != nil {
			log.Fatalf("provd: open store: %v", err)
		}
		defer closer()
		st = persistent
		if *cache {
			if c, ok := st.(*closurecache.Cache); ok {
				if m := c.Metrics(); m.Restored > 0 {
					log.Printf("provd: restored %d warm closures from snapshot", m.Restored)
				}
			}
		}
	case *shards > 1:
		st = shardedstore.NewMem(*shards).WithTrace(trace)
	default:
		st = store.NewMemStore()
	}
	if *cache && *storeDir == "" {
		st = closurecache.Wrap(st)
	}
	repo := collab.NewRepository(st)
	if *seed != 0 {
		if _, err := collab.SynthesizeCommunity(repo, collab.CommunityOptions{
			Seed: *seed, Users: *users, RunsEach: *runsEach,
		}); err != nil {
			log.Fatalf("provd: synthesize community: %v", err)
		}
		s := repo.Stat()
		log.Printf("provd: synthesized %d workflows, %d runs, %d users", s.Workflows, s.Runs, s.Users)
	}
	var hopts collab.HandlerOptions
	if *explain {
		hopts.ExplainQueries = func(query, report string) {
			log.Printf("provd: explain %q\n%s", query, report)
		}
	}
	log.Printf("provd: listening on %s", *addr)
	if err := http.ListenAndServe(*addr, collab.NewHandlerWith(repo, hopts)); err != nil {
		log.Fatalf("provd: %v", err)
	}
}
