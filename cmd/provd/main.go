// Command provd serves the collaboratory's HTTP API: workflow sharing,
// full-text search, run-log retrieval, lineage/dependents closure queries
// and batch frontier expansion (/expand), PQL, and recommendations (see
// internal/collab for routes — all under the versioned /v1/ prefix, with
// the unversioned paths kept as deprecated aliases). Closure endpoints
// run on the storage layer's pushed-down batch traversal, so they cost
// O(hops) store operations on every backend — including the durable file
// store.
//
// Usage:
//
//	provd -addr :8080                      # empty repository
//	provd -addr :8080 -seed 7 -users 20    # with a synthetic community
//	provd -store /var/lib/provd            # file-backed store
//	provd -durability group                # group-commit WAL durable ingest
//	provd -checkpoint-every 256            # snapshot every N published runs
//	provd -checkpoint-interval 30s         # …and at most 30s after a write
//	provd -checkpoint-bytes 4194304        # …and every ~4MiB of log growth
//	provd -cache                           # incremental closure cache
//	provd -shards 4                        # hash-partitioned sharded store
//	provd -pprof                           # net/http/pprof at /debug/pprof/
//	provd -slow-query 250ms                # slow-query log threshold
//	provd -log-requests                    # structured per-request log
//
//	# log-shipping replication: one primary, N read replicas
//	provd -addr :8080 -store /var/lib/provd -role primary \
//	      -replicas http://replica1:8081,http://replica2:8082
//	provd -addr :8081 -store /var/lib/provd-replica -role follower \
//	      -primary http://primary:8080
//
// With -role primary the daemon serves its committed WAL (and checkpoint
// snapshots) to followers over /v1/replication/*; -replicas lists
// follower URLs to probe in /v1/replication/status. With -role follower
// the daemon bootstraps its store from the primary's checkpoint + log,
// tails the primary's committed log (poll interval -replica-poll), and
// serves read-only queries — writes are rejected with a read_only_replica
// error, and every response carries X-Replica-Applied / X-Replica-Lag
// headers so clients can judge staleness. A follower's shard count comes
// from the primary; -shards and -seed are rejected under -role follower.
// Followers also serve /v1/replication/* from their own logs, so replicas
// can chain.
//
// Failover: replicated roles carry a monotone fencing epoch
// (persisted in DIR/replication-epoch.json and stamped on every
// response as X-Replication-Epoch). POST /v1/replication/promote — or
// `provctl promote` — turns a follower into the primary: it drains
// what it can reach of the upstream log, bumps the epoch, drops
// read-only and ships its own log; the old primary fences itself
// read-only the moment it observes the higher epoch (requests from a
// lower epoch are rejected with stale_epoch). Follower→primary calls
// retry under jittered exponential backoff with per-request timeouts;
// GET /v1/health distinguishes connected/degraded/disconnected and
// answers 503 for followers that should leave a load balancer's
// rotation, and -max-lag bounds read staleness: beyond it data reads
// answer 503 replica_too_stale instead of arbitrarily stale results.
//
// With -cache the store is wrapped in the incrementally maintained closure
// cache (internal/store/closurecache): /lineage and /dependents hit
// memoized closures, /expand hits memoized frontiers, and each published
// run patches the affected entries at ingest instead of flushing them. On
// a follower the replication apply hook feeds the same delta path, so
// cached closures stay warm as replicated runs fold.
//
// With -shards N the store is partitioned across N hash-routed shards
// (internal/store/shardedstore): published runs route whole to a home
// shard (ingests of different runs proceed under per-shard locking),
// /expand scatter/gathers one frontier across the shards in parallel, and
// /lineage and /dependents run the closure pushdown — each shard computes
// its local fixpoint and only cross-shard frontiers are exchanged between
// rounds. Combined with -store DIR the shards are file-backed under
// DIR/shard-000…; a directory must be reopened with the shard count it was
// written with (mismatches are rejected loudly). -cache wraps the sharded
// router unchanged. -trace-rounds logs each pushdown closure's rounds
// executed and per-round frontier sizes, so round-count regressions are
// observable in production, not just in the bench.
//
// With -store DIR, -durability selects the ingest guarantee — none,
// fsync (one fsync per published run) or group (write-ahead group commit:
// concurrent publishes coalesce into batches sharing one fsync; the
// durable mode meant for this daemon's multi-writer ingest) — and the
// checkpoint flags bound reopen replay three ways: -checkpoint-every N
// snapshots every N publishes, -checkpoint-interval D at most D after a
// write dirties the store, and -checkpoint-bytes B every ~B bytes of log
// growth, so replay cost stays bounded whether ingest is bursty or a
// trickle.
//
// Observability: GET /v1/metrics serves the process's runtime metrics
// (WAL, store, cache, replication, executor and HTTP families) in
// Prometheus text exposition format, and GET /v1/status reports the node's
// role, uptime, store configuration and build version. Every response
// carries an X-Request-ID (generated, or propagated from the request);
// -log-requests logs each request through log/slog, and requests slower
// than -slow-query (default 1s; 0 disables) are escalated to a Warn-level
// slow-query log with their query string. -pprof additionally serves
// net/http/pprof under /debug/pprof/. provctl status and provctl metrics
// are the matching operator commands.
//
// Standing queries: POST /v1/subscriptions registers a live query — a
// triple pattern, the closure membership of an entity, or a Datalog
// conjunction — answered with an initial snapshot; GET
// /v1/subscriptions/{id}/events then streams its add/remove deltas as
// Server-Sent Events (Last-Event-ID resumes; ?poll=1 long-polls) as
// publishes fold into the result incrementally. Followers host
// subscriptions too, fed by the replication apply hook. provctl watch is
// the matching operator command.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops,
// in-flight requests drain (bounded at 10s), and the store — including any
// in-flight auto-checkpoint — and the replication tailer are closed before
// the process exits. A second signal kills immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/collab"
	"repro/internal/collab/api"
	"repro/internal/core"
	"repro/internal/query/standing"
	"repro/internal/store"
	"repro/internal/store/closurecache"
	"repro/internal/store/replica"
	"repro/internal/store/shardedstore"
)

func main() {
	start := time.Now()
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		storeDir     = flag.String("store", "", "directory for a durable file store (default: in-memory)")
		cache        = flag.Bool("cache", false, "maintain closures incrementally across ingests (closure cache)")
		shards       = flag.Int("shards", 1, "partition the store across N hash-routed shards")
		durability   = flag.String("durability", "none", "ingest durability with -store: none, fsync, or group (group-commit WAL)")
		ckptEvery    = flag.Int("checkpoint-every", 0, "with -store: snapshot the store (and cache) every N published runs")
		ckptInterval = flag.Duration("checkpoint-interval", 0, "with -store: snapshot at most this long after a write dirties the store")
		ckptBytes    = flag.Int64("checkpoint-bytes", 0, "with -store: snapshot every time roughly this many log bytes accumulate")
		role         = flag.String("role", api.RoleStandalone, "replication role: standalone, primary (serve WAL to followers), or follower (read replica)")
		primary      = flag.String("primary", "", "with -role follower: the primary provd's base URL")
		replicas     = flag.String("replicas", "", "with -role primary: comma-separated follower URLs to probe in /v1/replication/status")
		replicaPoll  = flag.Duration("replica-poll", 0, "with -role follower: primary tail interval (default 200ms; failures back off exponentially with jitter)")
		maxLag       = flag.Int64("max-lag", 0, "with -role follower: answer data reads 503 replica_too_stale while replication lag exceeds this many bytes (0: unbounded staleness)")
		traceRounds  = flag.Bool("trace-rounds", false, "log each sharded closure's pushdown rounds and per-round frontier sizes")
		explain      = flag.Bool("explain", false, "log each /query's executed plan: join order, per-operator rows, scan parallelism, allocations")
		pprofFlag    = flag.Bool("pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/")
		slowQuery    = flag.Duration("slow-query", time.Second, "log requests at least this slow at Warn level, with their query (0 disables)")
		logRequests  = flag.Bool("log-requests", false, "log every request (structured: request ID, route, status, duration)")
		seed         = flag.Int64("seed", 0, "synthesize a community with this seed (0: empty)")
		users        = flag.Int("users", 10, "synthetic community size")
		runsEach     = flag.Int("runs", 3, "synthetic runs published per user")
	)
	flag.Parse()

	dur, err := store.ParseDurability(*durability)
	if err != nil {
		log.Fatalf("provd: %v", err)
	}
	opts := core.Options{
		StoreDir:           *storeDir,
		Shards:             *shards,
		Durability:         dur,
		CheckpointEvery:    *ckptEvery,
		CheckpointInterval: *ckptInterval,
		CheckpointBytes:    *ckptBytes,
		EnableClosureCache: *cache,
		Primary:            *primary,
		ReplicaPoll:        *replicaPoll,
	}
	if err := opts.ValidatePersistence(); err != nil {
		log.Fatalf("provd: %v", err)
	}
	var trace func(shardedstore.ClosureTrace)
	if *traceRounds {
		trace = func(t shardedstore.ClosureTrace) {
			log.Printf("provd: closure(%s, %s): %d rounds, %d cross-shard crossings, %d nodes, per-round frontier sizes %v",
				t.Seed, t.Dir, t.Rounds, t.Crossings, t.Nodes, t.Probes)
		}
	}
	opts.TraceRounds = trace

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)

	var hopts collab.HandlerOptions
	hopts.SlowRequest = *slowQuery
	if *logRequests {
		hopts.RequestLog = logger
	}
	hopts.Node = collab.NodeInfo{
		Role:   *role,
		Shards: *shards,
		Cache:  *cache,
		Start:  start,
	}
	if *storeDir != "" {
		hopts.Node.StoreDir = *storeDir
		hopts.Node.Durability = dur.String()
		hopts.Node.Checkpoint = checkpointPolicy(*ckptEvery, *ckptInterval, *ckptBytes)
	}
	if *explain {
		hopts.ExplainQueries = func(query, report string) {
			log.Printf("provd: explain %q\n%s", query, report)
		}
	}

	var st store.Store
	switch *role {
	case api.RoleFollower:
		if *storeDir == "" {
			log.Fatalf("provd: -role follower requires -store DIR (the replica's local log)")
		}
		if *primary == "" {
			log.Fatalf("provd: -role follower requires -primary URL")
		}
		if *seed != 0 {
			log.Fatalf("provd: -seed writes to the store; a follower is read-only (seed the primary instead)")
		}
		if *shards != 1 {
			log.Fatalf("provd: a follower inherits its shard count from the primary; drop -shards")
		}
		fst, f, cleanup, err := core.OpenFollowerStore(opts)
		if err != nil {
			log.Fatalf("provd: open follower: %v", err)
		}
		defer cleanup()
		node, err := replica.NewNode(*storeDir, api.RoleFollower, f)
		if err != nil {
			log.Fatalf("provd: open follower: %v", err)
		}
		// Followers host standing subscriptions too: the replication apply
		// hook feeds each shipped run into the manager, composed after the
		// closure-cache hook core may have installed. The tap covers the
		// other write path — local publishes after a promotion — which is
		// disjoint from replication apply, so no run is counted twice.
		mgr := standing.NewManager(fst, standing.Options{})
		f.AddOnApply(mgr.ApplyDelta)
		st = standing.NewTap(fst, mgr)
		hopts.Standing = mgr
		hopts.ReadOnly = true
		hopts.Lag = f.Lag
		hopts.Failover = node
		hopts.MaxLagBytes = *maxLag
		// Followers re-ship their own logs, so replicas can chain off a
		// replica instead of all tailing the primary — and a promoted
		// follower ships its log as the new primary through the same source.
		var fsrc *replica.Source
		if s, err := replica.NewSource(fst); err == nil {
			fsrc, hopts.Source = s, s
		}
		hopts.Status = func() api.ReplicationStatus {
			var rs api.ReplicationStatus
			if node.Role() == api.RoleFollower || fsrc == nil {
				rs = f.Status()
			} else {
				rs = fsrc.Status(nil, nil)
			}
			rs.Epoch, rs.Fenced = node.Epoch(), node.Fenced()
			return rs
		}
		// A follower's real shard count comes from the primary, not -shards.
		hopts.Node.Shards = len(f.Status().Shards)
		applied, behind := f.Lag()
		log.Printf("provd: follower of %s at %d applied bytes (%d behind), epoch %d", *primary, applied, behind, node.Epoch())

	case api.RolePrimary, api.RoleStandalone:
		switch {
		case *storeDir != "":
			persistent, closer, err := core.OpenPersistentStore(opts)
			if err != nil {
				log.Fatalf("provd: open store: %v", err)
			}
			defer closer()
			st = persistent
			if *cache {
				if c, ok := st.(*closurecache.Cache); ok {
					if m := c.Metrics(); m.Restored > 0 {
						log.Printf("provd: restored %d warm closures from snapshot", m.Restored)
					}
				}
			}
		case *shards > 1:
			st = shardedstore.NewMem(*shards).WithTrace(trace)
		default:
			st = store.NewMemStore()
		}
		if *cache && *storeDir == "" {
			st = closurecache.Wrap(st)
		}
		if *role == api.RolePrimary {
			src, err := replica.NewSource(st)
			if err != nil {
				log.Fatalf("provd: -role primary: %v", err)
			}
			node, err := replica.NewNode(*storeDir, api.RolePrimary, nil)
			if err != nil {
				log.Fatalf("provd: -role primary: %v", err)
			}
			replicaURLs := splitURLs(*replicas)
			hopts.Source = src
			hopts.Failover = node
			hopts.Status = func() api.ReplicationStatus {
				rs := src.Status(replicaURLs, func(u string) (*api.ReplicationStatus, error) {
					return api.NewClient(u, probeClient).ReplicationStatus()
				})
				rs.Epoch, rs.Fenced = node.Epoch(), node.Fenced()
				return rs
			}
			log.Printf("provd: primary shipping %d shard log(s) at epoch %d; probing %d replica(s)", src.Shards(), node.Epoch(), len(replicaURLs))
		}
		// Standing subscriptions tap the top of the store stack (above any
		// closure cache), so every accepted publish folds into the live
		// subscriptions after it commits. The replication source above
		// reads the stack beneath the tap.
		mgr := standing.NewManager(st, standing.Options{})
		st = standing.NewTap(st, mgr)
		hopts.Standing = mgr

	default:
		log.Fatalf("provd: unknown -role %q (want standalone, primary or follower)", *role)
	}

	repo := collab.NewRepository(st)
	if *seed != 0 {
		if _, err := collab.SynthesizeCommunity(repo, collab.CommunityOptions{
			Seed: *seed, Users: *users, RunsEach: *runsEach,
		}); err != nil {
			log.Fatalf("provd: synthesize community: %v", err)
		}
		s := repo.Stat()
		log.Printf("provd: synthesized %d workflows, %d runs, %d users", s.Workflows, s.Runs, s.Users)
	}
	var handler http.Handler = collab.NewHandlerWith(repo, hopts)
	if *pprofFlag {
		// Compose pprof onto an outer mux instead of using the
		// DefaultServeMux side-effect registration, so profiling is served
		// only when asked for.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("provd: pprof enabled at /debug/pprof/")
	}

	// Serve until SIGINT/SIGTERM, then drain: Shutdown stops the listener
	// and waits for in-flight requests, and the deferred store/follower
	// closers (which drain auto-checkpoints and the replication tailer) run
	// when main returns — a kill can no longer race an in-flight checkpoint
	// or replication apply.
	srv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("provd: listening on %s (role %s)", *addr, *role)
	select {
	case err := <-errc:
		log.Fatalf("provd: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills hard
		log.Printf("provd: shutdown signal received; draining connections")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("provd: shutdown: %v", err)
		}
		log.Printf("provd: closing store")
	}
}

// checkpointPolicy renders the auto-checkpoint flags as the human-readable
// policy /v1/status reports.
func checkpointPolicy(every int, interval time.Duration, bytes int64) string {
	var parts []string
	if every > 0 {
		parts = append(parts, fmt.Sprintf("every %d runs", every))
	}
	if interval > 0 {
		parts = append(parts, fmt.Sprintf("at most %s after a write", interval))
	}
	if bytes > 0 {
		parts = append(parts, fmt.Sprintf("every %.1f MiB of log growth", float64(bytes)/(1<<20)))
	}
	if len(parts) == 0 {
		return "disabled"
	}
	return strings.Join(parts, ", ")
}

// probeClient bounds primary->replica status probes so one dead replica
// can't stall /v1/replication/status.
var probeClient = &http.Client{Timeout: 2 * time.Second}

func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}
