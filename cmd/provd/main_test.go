package main

import (
	"bytes"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/store/replica"
)

// TestSIGTERMDrainMidTail exercises the daemon's graceful shutdown
// against a live follower: provd is killed with SIGTERM while a replica
// is mid-stream, the drain must leave the follower's shipped bytes an
// exact prefix of the primary's on-disk log (no torn response, no lost
// ack), and after a restart on the same store the follower resumes to a
// byte-identical copy.
func TestSIGTERMDrainMidTail(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the provd binary")
	}
	bin := filepath.Join(t.TempDir(), "provd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	pdir, fdir := t.TempDir(), t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr

	var logs bytes.Buffer
	start := func(extra ...string) *exec.Cmd {
		args := append([]string{
			"-addr", addr, "-store", pdir, "-role", "primary", "-durability", "group",
		}, extra...)
		cmd := exec.Command(bin, args...)
		cmd.Stdout = &logs
		cmd.Stderr = &logs
		if err := cmd.Start(); err != nil {
			t.Fatalf("start provd: %v", err)
		}
		return cmd
	}

	// First life: synthesize a community so there is a real log to ship.
	cmd := start("-seed", "42", "-users", "25", "-runs", "4")
	waitUp(t, base, &logs)

	// Attach a follower with small shipping batches, so the copy takes
	// many round trips and the SIGTERM lands mid-stream.
	type opened struct {
		f   *replica.Follower
		err error
	}
	openc := make(chan opened, 1)
	go func() {
		f, err := replica.Open(replica.Options{
			Dir: fdir, Primary: base,
			Poll: 2 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
			RequestTimeout: 2 * time.Second, MaxBatchBytes: 1024,
		})
		openc <- opened{f, err}
	}()
	time.Sleep(25 * time.Millisecond)

	// Drain: the listener stops, in-flight stream responses finish, the
	// store closes cleanly, the process exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("provd did not exit cleanly on SIGTERM: %v\n%s", err, logs.Bytes())
	}

	var op opened
	select {
	case op = <-openc:
	case <-time.After(15 * time.Second):
		t.Fatal("follower open did not settle after the primary died")
	}

	// Whatever the follower shipped before the kill must be an exact
	// byte prefix of the primary's durable log — the drain may cut the
	// copy short, never corrupt it.
	pbytes, err := os.ReadFile(filepath.Join(pdir, store.LogFileName))
	if err != nil {
		t.Fatal(err)
	}
	if len(pbytes) == 0 {
		t.Fatal("primary log is empty; synthesis did not persist")
	}
	fpath := filepath.Join(fdir, store.LogFileName)
	if fbytes, err := os.ReadFile(fpath); err == nil {
		if len(fbytes) > len(pbytes) || !bytes.Equal(fbytes, pbytes[:len(fbytes)]) {
			t.Fatalf("follower log is not a primary prefix after SIGTERM: %d vs %d bytes", len(fbytes), len(pbytes))
		}
	}

	// Second life: same store, same address, no re-synthesis. The
	// follower resumes from its local committed offset and converges.
	cmd2 := start()
	defer func() {
		_ = cmd2.Process.Signal(syscall.SIGTERM)
		_ = cmd2.Wait()
	}()
	waitUp(t, base, &logs)

	f := op.f
	if f == nil {
		// The kill landed inside the bootstrap; reopening resumes it.
		for attempt := 0; f == nil; attempt++ {
			f, err = replica.Open(replica.Options{
				Dir: fdir, Primary: base,
				Poll: 2 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
				RequestTimeout: 2 * time.Second, MaxBatchBytes: 4096,
			})
			if err != nil {
				if attempt > 50 {
					t.Fatalf("follower never reopened: %v", err)
				}
				time.Sleep(100 * time.Millisecond)
			}
		}
	}
	defer f.Close()
	deadline := time.Now().Add(15 * time.Second)
	for {
		err := f.CatchUp()
		if _, behind := f.Lag(); err == nil && behind == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged after restart: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fbytes, err := os.ReadFile(fpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fbytes, pbytes) {
		t.Fatalf("follower log did not converge byte-identically: %d vs %d bytes", len(fbytes), len(pbytes))
	}
	if runs, err := f.Store().Runs(); err != nil || len(runs) == 0 {
		t.Fatalf("resumed follower store unusable: %d runs, %v", len(runs), err)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitUp(t *testing.T, base string, logs *bytes.Buffer) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/status")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("provd never came up at %s\n%s", base, logs.Bytes())
		}
		time.Sleep(25 * time.Millisecond)
	}
}
