// Command provctl is the workflow/provenance CLI:
//
//	provctl validate wf.json              check a workflow specification
//	provctl show wf.json [-format ascii|dot]
//	provctl hash wf.json                  content hash (prospective identity)
//	provctl run wf.json [-store DIR] [-cache] [-shards N]   execute with provenance capture
//	provctl query -store DIR [-cache] [-shards N] 'PQL'     query stored provenance
//	provctl lineage -store DIR [-cache] [-shards N] ENTITY  upstream closure of an entity
//	provctl export -store DIR -run ID [-format opm-xml|opm-json|dot]
//	provctl demo NAME                     print a built-in workflow as JSON
//	                                      (medimg, medimg-smooth, genomics,
//	                                       forecast, dl-render)
//
// Module implementations come from the built-in workload library; run
// works for any workflow whose module types it registers.
//
// -cache serves closure queries through the incrementally maintained
// closure cache (internal/store/closurecache): repeated lineage/dependents
// queries hit memoized closures, and ingests patch the affected entries in
// place instead of invalidating the cache.
//
// -shards N partitions the store across N hash-routed shards
// (internal/store/shardedstore): with -store DIR the shards are file-backed
// under DIR/shard-000…, otherwise in-memory. A store directory must be
// reopened with the same shard count it was written with. -cache wraps the
// sharded router unchanged.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dbprov"
	"repro/internal/opm"
	"repro/internal/query/pql"
	"repro/internal/store"
	"repro/internal/store/closurecache"
	"repro/internal/store/shardedstore"
	"repro/internal/vis"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "validate":
		err = cmdValidate(args)
	case "show":
		err = cmdShow(args)
	case "hash":
		err = cmdHash(args)
	case "run":
		err = cmdRun(args)
	case "query":
		err = cmdQuery(args)
	case "lineage":
		err = cmdLineage(args)
	case "export":
		err = cmdExport(args)
	case "demo":
		err = cmdDemo(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "provctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: provctl <validate|show|hash|run|query|lineage|export|demo> ...`)
}

func loadWorkflow(path string) (*workflow.Workflow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return workflow.DecodeJSON(data)
}

func cmdValidate(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("validate: want one workflow file")
	}
	wf, err := loadWorkflow(args[0])
	if err != nil {
		return err
	}
	s := wf.Stat()
	fmt.Printf("ok: %s (%d modules, %d connections, depth %d)\n", wf.ID, s.Modules, s.Connections, s.Depth)
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ContinueOnError)
	format := fs.String("format", "ascii", "ascii or dot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("show: want one workflow file")
	}
	wf, err := loadWorkflow(fs.Arg(0))
	if err != nil {
		return err
	}
	switch *format {
	case "ascii":
		text, err := vis.WorkflowASCII(wf)
		if err != nil {
			return err
		}
		fmt.Print(text)
	case "dot":
		fmt.Print(vis.WorkflowDOT(wf))
	default:
		return fmt.Errorf("show: unknown format %q", *format)
	}
	return nil
}

func cmdHash(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("hash: want one workflow file")
	}
	wf, err := loadWorkflow(args[0])
	if err != nil {
		return err
	}
	fmt.Println(wf.ContentHash())
	return nil
}

// openBacking opens the persistent backing store for a store directory:
// one FileStore, or a sharded router over file-backed shards when
// shards > 1.
func openBacking(storeDir string, shards int) (store.Store, error) {
	if shards > 1 {
		return shardedstore.Open(storeDir, shards, false)
	}
	return store.OpenFileStore(storeDir)
}

func newSystem(storeDir string, closureCache bool, shards int) (*core.System, func(), error) {
	var st store.Store
	cleanup := func() {}
	if storeDir != "" {
		backing, err := openBacking(storeDir, shards)
		if err != nil {
			return nil, nil, err
		}
		st = backing
		cleanup = func() { backing.Close() }
	}
	sys := core.NewSystem(core.Options{Store: st, Shards: shards, Agent: os.Getenv("USER"), EnableClosureCache: closureCache})
	workloads.RegisterAll(sys.Registry)
	dbprov.RegisterRelationalModules(sys.Registry)
	return sys, cleanup, nil
}

// openStore opens the store for a query-side command — file-backed, sharded
// when requested — optionally wrapped in the incrementally maintained
// closure cache (the cache layers above the sharded router unchanged).
func openStore(storeDir string, closureCache bool, shards int) (store.Store, func(), error) {
	backing, err := openBacking(storeDir, shards)
	if err != nil {
		return nil, nil, err
	}
	st := backing
	if closureCache {
		st = closurecache.Wrap(backing)
	}
	return st, func() { backing.Close() }, nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	storeDir := fs.String("store", "", "persist provenance to this directory")
	cache := fs.Bool("cache", false, "maintain closures incrementally across ingests (closure cache)")
	shards := fs.Int("shards", 1, "partition the store across N hash-routed shards")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("run: want one workflow file")
	}
	wf, err := loadWorkflow(fs.Arg(0))
	if err != nil {
		return err
	}
	sys, cleanup, err := newSystem(*storeDir, *cache, *shards)
	if err != nil {
		return err
	}
	defer cleanup()
	res, log, err := sys.Run(context.Background(), wf, nil)
	if err != nil {
		return err
	}
	fmt.Printf("run %s: status=%s elapsed=%s\n", res.RunID, res.Status, res.Elapsed.Round(1000))
	fmt.Print(vis.RunASCII(log))
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	storeDir := fs.String("store", "", "provenance store directory")
	cache := fs.Bool("cache", false, "serve closures through the incrementally maintained cache")
	shards := fs.Int("shards", 1, "shard count the store directory was written with")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *storeDir == "" {
		return fmt.Errorf("query: want -store DIR and one PQL query")
	}
	st, cleanup, err := openStore(*storeDir, *cache, *shards)
	if err != nil {
		return err
	}
	defer cleanup()
	res, err := pql.Run(st, fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	return nil
}

func cmdLineage(args []string) error {
	fs := flag.NewFlagSet("lineage", flag.ContinueOnError)
	storeDir := fs.String("store", "", "provenance store directory")
	down := fs.Bool("dependents", false, "downstream instead of upstream")
	cache := fs.Bool("cache", false, "serve closures through the incrementally maintained cache")
	shards := fs.Int("shards", 1, "shard count the store directory was written with")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *storeDir == "" {
		return fmt.Errorf("lineage: want -store DIR and one entity ID")
	}
	st, cleanup, err := openStore(*storeDir, *cache, *shards)
	if err != nil {
		return err
	}
	defer cleanup()
	dir := store.Up
	if *down {
		dir = store.Down
	}
	// Pushed-down closure: the file store answers the whole traversal from
	// its resident adjacency index (memoized when -cache is set).
	ids, err := st.Closure(fs.Arg(0), dir)
	if err != nil {
		return err
	}
	for _, id := range ids {
		fmt.Println(id)
	}
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	storeDir := fs.String("store", "", "provenance store directory")
	runID := fs.String("run", "", "run ID to export")
	format := fs.String("format", "opm-xml", "opm-xml, opm-json or dot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" || *runID == "" {
		return fmt.Errorf("export: want -store DIR and -run ID")
	}
	fsStore, err := store.OpenFileStore(*storeDir)
	if err != nil {
		return err
	}
	defer fsStore.Close()
	l, err := fsStore.RunLog(*runID)
	if err != nil {
		return err
	}
	switch *format {
	case "dot":
		text, err := vis.ProvenanceDOT(l)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	case "opm-xml", "opm-json":
		g, err := opm.FromRunLog(l, "provctl")
		if err != nil {
			return err
		}
		var data []byte
		if *format == "opm-xml" {
			data, err = opm.EncodeXML(g)
		} else {
			data, err = opm.EncodeJSON(g)
		}
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	return fmt.Errorf("export: unknown format %q", *format)
}

func cmdDemo(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("demo: want a workflow name (medimg, medimg-smooth, genomics, forecast, dl-render)")
	}
	var wf *workflow.Workflow
	switch args[0] {
	case "medimg":
		wf = workloads.MedicalImaging()
	case "medimg-smooth":
		wf = workloads.SmoothedImaging()
	case "genomics":
		wf = workloads.Genomics("sample-1")
	case "forecast":
		wf = workloads.Forecasting("station-A")
	case "dl-render":
		wf = workloads.DownloadAndRender()
	default:
		return fmt.Errorf("demo: unknown workflow %q", args[0])
	}
	data, err := workflow.EncodeJSON(wf)
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}
