// Command provctl is the workflow/provenance CLI:
//
//	provctl validate wf.json              check a workflow specification
//	provctl show wf.json [-format ascii|dot]
//	provctl hash wf.json                  content hash (prospective identity)
//	provctl run wf.json [-store DIR] [-cache] [-shards N] [-durability none|fsync|group] [-checkpoint-every N] [-checkpoint-interval D] [-checkpoint-bytes B]
//	provctl query -store DIR [-cache] [-shards N] 'PQL'     query stored provenance
//	provctl lineage -store DIR [-cache] [-shards N] [-trace-rounds] ENTITY  upstream closure of an entity
//	provctl checkpoint -store DIR [-shards N]               snapshot folded state next to the log
//	provctl replication -server URL                         a provd's replication role and per-shard positions
//	provctl promote -server URL [-timeout D]                promote a follower to primary (drain, bump epoch, cut over)
//	provctl fence -server URL -epoch N                      show a node an epoch so a stale primary fences itself
//	provctl status -server URL                              a provd's identity: role, epoch, uptime, store config, build
//	provctl metrics -server URL [-grep S]                   a provd's metrics (Prometheus text)
//	provctl metrics -server URL -watch [-interval D]        …polled, printing per-interval deltas
//	provctl watch -server URL -lineage ENTITY               live standing query: snapshot, then +/- deltas
//	provctl watch -server URL -dependents ENTITY            …downstream closure
//	provctl watch -server URL -triple "S P O"               …triple pattern ("*" = wildcard)
//	provctl watch -server URL 'used(E, A), generated(E, B)' …Datalog conjunction [-output A,B] [-poll]
//	provctl export -store DIR -run ID [-format opm-xml|opm-json|dot]
//	provctl demo NAME                     print a built-in workflow as JSON
//	                                      (medimg, medimg-smooth, genomics,
//	                                       forecast, dl-render)
//
// Module implementations come from the built-in workload library; run
// works for any workflow whose module types it registers.
//
// -cache serves closure queries through the incrementally maintained
// closure cache (internal/store/closurecache): repeated lineage/dependents
// queries hit memoized closures, and ingests patch the affected entries in
// place instead of invalidating the cache.
//
// -shards N partitions the store across N hash-routed shards
// (internal/store/shardedstore): with -store DIR the shards are file-backed
// under DIR/shard-000…, otherwise in-memory. A store directory must be
// reopened with the same shard count it was written with — any mismatch is
// rejected loudly. -cache wraps the sharded router unchanged.
//
// -durability selects the write-path guarantee of run's ingest: none (OS
// buffered, the default), fsync (one fsync per append) or group
// (write-ahead group commit: concurrent appends coalesce into batches
// sharing one fsync — the durable mode for multi-writer ingest).
//
// -checkpoint-every N snapshots the store's folded state (and, with
// -cache, the memoized closures) every N ingests; -checkpoint-interval D
// also snapshots at most D after a write dirties the store, and
// -checkpoint-bytes B every ~B bytes of log growth. `provctl checkpoint`
// does the same explicitly. A checkpointed store reopens by replaying only
// the log suffix past the snapshot and serves warm closures immediately.
//
// replication queries a running provd's /v1/replication/status: its role
// (standalone, primary or follower), each shard log's committed/applied
// positions and lag, and — on a primary — the probed status of every
// configured replica.
//
// lineage's -trace-rounds prints, for sharded stores, how many pushdown
// rounds the closure executed and each round's frontier probe count, so a
// regression in cross-shard round count is observable outside the bench.
//
// watch registers a standing query on a running provd and follows its
// live delta stream: the initial snapshot prints indented, then each
// ingest that affects the result prints "+ item" / "- item" lines as the
// server folds it in. The stream is SSE with automatic reconnect-and-
// resume (Last-Event-ID); -poll long-polls instead. If the consumer falls
// behind the server's bounded replay buffer, an explicit gap line is
// followed by a fresh snapshot — never a silently stale result. On exit
// the subscription is deleted unless -keep is given.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/collab/api"
	"repro/internal/core"
	"repro/internal/dbprov"
	"repro/internal/opm"
	"repro/internal/query/pql"
	"repro/internal/store"
	"repro/internal/store/shardedstore"
	"repro/internal/vis"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "validate":
		err = cmdValidate(args)
	case "show":
		err = cmdShow(args)
	case "hash":
		err = cmdHash(args)
	case "run":
		err = cmdRun(args)
	case "query":
		err = cmdQuery(args)
	case "lineage":
		err = cmdLineage(args)
	case "checkpoint":
		err = cmdCheckpoint(args)
	case "replication":
		err = cmdReplication(args)
	case "promote":
		err = cmdPromote(args)
	case "fence":
		err = cmdFence(args)
	case "status":
		err = cmdStatus(args)
	case "metrics":
		err = cmdMetrics(args)
	case "watch":
		err = cmdWatch(args)
	case "export":
		err = cmdExport(args)
	case "demo":
		err = cmdDemo(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "provctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: provctl <validate|show|hash|run|query|lineage|checkpoint|replication|promote|fence|status|metrics|watch|export|demo> ...`)
}

func loadWorkflow(path string) (*workflow.Workflow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return workflow.DecodeJSON(data)
}

func cmdValidate(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("validate: want one workflow file")
	}
	wf, err := loadWorkflow(args[0])
	if err != nil {
		return err
	}
	s := wf.Stat()
	fmt.Printf("ok: %s (%d modules, %d connections, depth %d)\n", wf.ID, s.Modules, s.Connections, s.Depth)
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ContinueOnError)
	format := fs.String("format", "ascii", "ascii or dot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("show: want one workflow file")
	}
	wf, err := loadWorkflow(fs.Arg(0))
	if err != nil {
		return err
	}
	switch *format {
	case "ascii":
		text, err := vis.WorkflowASCII(wf)
		if err != nil {
			return err
		}
		fmt.Print(text)
	case "dot":
		fmt.Print(vis.WorkflowDOT(wf))
	default:
		return fmt.Errorf("show: unknown format %q", *format)
	}
	return nil
}

func cmdHash(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("hash: want one workflow file")
	}
	wf, err := loadWorkflow(args[0])
	if err != nil {
		return err
	}
	fmt.Println(wf.ContentHash())
	return nil
}

// storeFlags are the persistent-store options shared by run, query,
// lineage and checkpoint, resolved into core.Options.
type storeFlags struct {
	storeDir     string
	cache        bool
	shards       int
	durability   string
	ckptEvery    int
	ckptInterval time.Duration
	ckptBytes    int64
	trace        func(shardedstore.ClosureTrace) // -trace-rounds sink (lineage)
}

func (f *storeFlags) register(fs *flag.FlagSet, withWritePath bool) {
	fs.StringVar(&f.storeDir, "store", "", "provenance store directory")
	fs.BoolVar(&f.cache, "cache", false, "serve closures through the incrementally maintained cache (persisted next to the log)")
	fs.IntVar(&f.shards, "shards", 1, "shard count the store directory is (or will be) written with")
	if withWritePath {
		fs.StringVar(&f.durability, "durability", "none", "ingest durability: none, fsync, or group (group-commit WAL)")
		fs.IntVar(&f.ckptEvery, "checkpoint-every", 0, "snapshot the store every N ingests (0: only explicit checkpoints)")
		fs.DurationVar(&f.ckptInterval, "checkpoint-interval", 0, "snapshot at most this long after a write dirties the store")
		fs.Int64Var(&f.ckptBytes, "checkpoint-bytes", 0, "snapshot every time roughly this many log bytes accumulate")
	} else {
		f.durability = "none"
	}
}

func (f *storeFlags) options() (core.Options, error) {
	d, err := store.ParseDurability(f.durability)
	if err != nil {
		return core.Options{}, err
	}
	opt := core.Options{
		StoreDir:           f.storeDir,
		Shards:             f.shards,
		EnableClosureCache: f.cache,
		Durability:         d,
		CheckpointEvery:    f.ckptEvery,
		CheckpointInterval: f.ckptInterval,
		CheckpointBytes:    f.ckptBytes,
		TraceRounds:        f.trace,
		Agent:              os.Getenv("USER"),
	}
	if err := opt.ValidatePersistence(); err != nil {
		return core.Options{}, err
	}
	return opt, nil
}

func newSystem(f *storeFlags) (*core.System, func(), error) {
	opt, err := f.options()
	if err != nil {
		return nil, nil, err
	}
	var sys *core.System
	cleanup := func() {}
	if f.storeDir != "" {
		var closer func() error
		sys, closer, err = core.NewPersistentSystem(opt)
		if err != nil {
			return nil, nil, err
		}
		cleanup = func() { closer() }
	} else {
		sys = core.NewSystem(opt)
	}
	workloads.RegisterAll(sys.Registry)
	dbprov.RegisterRelationalModules(sys.Registry)
	return sys, cleanup, nil
}

// openStore opens the store for a query-side command — file-backed, sharded
// when requested — optionally wrapped in the incrementally maintained
// closure cache, which restores its persisted snapshot so repeated CLI
// queries start warm.
func openStore(f *storeFlags) (store.Store, func(), error) {
	opt, err := f.options()
	if err != nil {
		return nil, nil, err
	}
	st, closer, err := core.OpenPersistentStore(opt)
	if err != nil {
		return nil, nil, err
	}
	return st, func() { closer() }, nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	var sf storeFlags
	sf.register(fs, true)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("run: want one workflow file")
	}
	wf, err := loadWorkflow(fs.Arg(0))
	if err != nil {
		return err
	}
	sys, cleanup, err := newSystem(&sf)
	if err != nil {
		return err
	}
	defer cleanup()
	res, log, err := sys.Run(context.Background(), wf, nil)
	if err != nil {
		return err
	}
	fmt.Printf("run %s: status=%s elapsed=%s\n", res.RunID, res.Status, res.Elapsed.Round(1000))
	fmt.Print(vis.RunASCII(log))
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	var sf storeFlags
	sf.register(fs, false)
	explain := fs.Bool("explain", false,
		"print the executed plan to stderr: join order, per-operator rows emitted, scan parallelism, bytes allocated")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || sf.storeDir == "" {
		return fmt.Errorf("query: want -store DIR and one PQL query")
	}
	st, cleanup, err := openStore(&sf)
	if err != nil {
		return err
	}
	defer cleanup()
	if *explain {
		q, err := pql.Parse(fs.Arg(0))
		if err != nil {
			return err
		}
		res, ex, err := pql.ExecuteExplain(st, q)
		if err != nil {
			return err
		}
		fmt.Fprint(os.Stderr, ex.String())
		fmt.Print(res.String())
		return nil
	}
	res, err := pql.Run(st, fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	return nil
}

func cmdLineage(args []string) error {
	fs := flag.NewFlagSet("lineage", flag.ContinueOnError)
	var sf storeFlags
	sf.register(fs, false)
	down := fs.Bool("dependents", false, "downstream instead of upstream")
	traceRounds := fs.Bool("trace-rounds", false,
		"print the sharded closure pushdown's rounds and per-round frontier sizes to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || sf.storeDir == "" {
		return fmt.Errorf("lineage: want -store DIR and one entity ID")
	}
	traced := false
	if *traceRounds {
		sf.trace = func(t shardedstore.ClosureTrace) {
			traced = true
			fmt.Fprintf(os.Stderr, "trace: closure(%s, %s): %d rounds, %d cross-shard crossings, %d nodes, per-round frontier sizes %v\n",
				t.Seed, t.Dir, t.Rounds, t.Crossings, t.Nodes, t.Probes)
		}
	}
	st, cleanup, err := openStore(&sf)
	if err != nil {
		return err
	}
	defer cleanup()
	dir := store.Up
	if *down {
		dir = store.Down
	}
	// Pushed-down closure: the file store answers the whole traversal from
	// its resident adjacency index (memoized when -cache is set; a sharded
	// store runs the per-shard pushdown with frontier exchange).
	ids, err := st.Closure(fs.Arg(0), dir)
	if err != nil {
		return err
	}
	if *traceRounds && !traced {
		fmt.Fprintln(os.Stderr, "trace: no pushdown rounds executed (unsharded store, or served warm by the closure cache)")
	}
	for _, id := range ids {
		fmt.Println(id)
	}
	return nil
}

// cmdCheckpoint snapshots a store directory's folded state (and, with
// -cache, the closure cache's entries) next to its log, so the next open
// replays only the log suffix written after this point.
func cmdCheckpoint(args []string) error {
	fs := flag.NewFlagSet("checkpoint", flag.ContinueOnError)
	var sf storeFlags
	sf.register(fs, false)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 || sf.storeDir == "" {
		return fmt.Errorf("checkpoint: want -store DIR (plus -shards N for sharded stores)")
	}
	st, cleanup, err := openStore(&sf)
	if err != nil {
		return err
	}
	defer cleanup()
	ck, ok := st.(store.Checkpointer)
	if !ok {
		return fmt.Errorf("checkpoint: store %s cannot checkpoint", st.Name())
	}
	if err := ck.Checkpoint(); err != nil {
		return err
	}
	stats, err := st.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint written: %d runs, %d events, %d log bytes covered\n",
		stats.Runs, stats.Events, stats.Bytes)
	return nil
}

// cmdReplication prints a running provd's replication status: role,
// per-shard log positions, and (on a primary) each probed replica.
func cmdReplication(args []string) error {
	fs := flag.NewFlagSet("replication", flag.ContinueOnError)
	server := fs.String("server", "http://localhost:8080", "provd base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("replication: want -server URL only")
	}
	rs, err := api.NewClient(*server, nil).ReplicationStatus()
	if err != nil {
		return err
	}
	printReplicationStatus(os.Stdout, rs, "")
	return nil
}

// cmdPromote asks a follower to take over as primary: drain what it can
// reach of the upstream log, bump the fencing epoch, drop read-only and
// begin shipping its own log. See the README's failover runbook.
func cmdPromote(args []string) error {
	fs := flag.NewFlagSet("promote", flag.ContinueOnError)
	server := fs.String("server", "http://localhost:8080", "the follower provd to promote")
	timeout := fs.Duration("timeout", 30*time.Second, "bound on the drain + cutover")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("promote: want -server URL only")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	// The drain can legitimately outlast the client default timeout, so
	// bound the whole call by -timeout instead.
	pr, err := api.NewClient(*server, &http.Client{Timeout: *timeout}).Promote(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("promoted: role %s, epoch %d, %d bytes applied\n", pr.Role, pr.Epoch, pr.AppliedBytes)
	if pr.DrainErr != "" {
		fmt.Printf("drain incomplete: %s\n  (writes the old primary acked past the replication boundary stayed there)\n", pr.DrainErr)
	}
	switch {
	case pr.OldPrimaryFenced:
		fmt.Println("old primary: fenced read-only")
	case pr.FenceErr != "":
		fmt.Printf("old primary: not confirmed fenced (%s)\n  it fences itself on the first epoch-stamped request it serves; run\n  `provctl fence -server OLD_PRIMARY -epoch %d` once it is reachable\n", pr.FenceErr, pr.Epoch)
	}
	return nil
}

// cmdFence shows a node a fencing epoch (typically the one `promote`
// printed): a lower-epoch unfenced primary demotes itself read-only on
// observing it — the cleanup step for a primary that was unreachable
// during promotion.
func cmdFence(args []string) error {
	fs := flag.NewFlagSet("fence", flag.ContinueOnError)
	server := fs.String("server", "http://localhost:8080", "the provd to show the epoch to (the old primary)")
	epoch := fs.Uint64("epoch", 0, "the fencing epoch to present (from `provctl promote` or the new primary's status)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 || *epoch == 0 {
		return fmt.Errorf("fence: want -server URL and -epoch N (N ≥ 1)")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rs, err := api.NewClient(*server, nil).Fence(ctx, *epoch)
	if err != nil {
		return err
	}
	switch {
	case rs.Fenced:
		fmt.Printf("fenced: node is read-only at epoch %d\n", rs.Epoch)
	case rs.Role == api.RoleFollower:
		fmt.Printf("node is a follower at epoch %d (nothing to fence)\n", rs.Epoch)
	default:
		fmt.Printf("node reports role %s, epoch %d, not fenced\n", rs.Role, rs.Epoch)
	}
	return nil
}

func printReplicationStatus(w io.Writer, rs *api.ReplicationStatus, indent string) {
	topo := "unsharded"
	if rs.Sharded {
		topo = fmt.Sprintf("%d shards", len(rs.Shards))
	}
	role := rs.Role
	if rs.Epoch > 0 {
		role = fmt.Sprintf("%s, epoch %d", role, rs.Epoch)
	}
	if rs.Fenced {
		role += ", FENCED"
	}
	fmt.Fprintf(w, "%srole: %s (%s)\n", indent, role, topo)
	if rs.Primary != "" {
		fmt.Fprintf(w, "%sprimary: %s\n", indent, rs.Primary)
	}
	for _, sp := range rs.Shards {
		ck := "none"
		if sp.Checkpoint >= 0 {
			ck = fmt.Sprintf("%d", sp.Checkpoint)
		}
		fmt.Fprintf(w, "%sshard %d: committed %d, applied %d, lag %d, checkpoint %s\n",
			indent, sp.Shard, sp.Committed, sp.Applied, sp.Lag, ck)
	}
	for _, p := range rs.Replicas {
		switch {
		case p.Error != "":
			fmt.Fprintf(w, "%sreplica %s: unreachable: %s\n", indent, p.URL, p.Error)
		case p.Status != nil:
			fmt.Fprintf(w, "%sreplica %s:\n", indent, p.URL)
			printReplicationStatus(w, p.Status, indent+"  ")
		default:
			fmt.Fprintf(w, "%sreplica %s: not probed\n", indent, p.URL)
		}
	}
}

func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	server := fs.String("server", "http://localhost:8080", "provd base URL")
	lineage := fs.String("lineage", "", "watch the upstream closure of this entity")
	dependents := fs.String("dependents", "", "watch the downstream closure of this entity")
	triple := fs.String("triple", "", `watch a triple pattern: "S P O" ("*" = wildcard)`)
	output := fs.String("output", "", "conjunctive watch: comma-separated output variables (default: all)")
	poll := fs.Bool("poll", false, "long-poll for events instead of streaming SSE")
	keep := fs.Bool("keep", false, "leave the subscription registered on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var req api.SubscribeRequest
	switch {
	case *lineage != "":
		req = api.SubscribeRequest{Kind: api.SubscriptionKindClosure, Root: *lineage, Direction: "up"}
	case *dependents != "":
		req = api.SubscribeRequest{Kind: api.SubscriptionKindClosure, Root: *dependents, Direction: "down"}
	case *triple != "":
		f := strings.Fields(*triple)
		if len(f) != 3 {
			return fmt.Errorf(`watch: -triple wants "S P O" (three fields, "*" = wildcard)`)
		}
		for i := range f {
			if f[i] == "*" {
				f[i] = ""
			}
		}
		req = api.SubscribeRequest{Kind: api.SubscriptionKindTriple, Subject: f[0], Predicate: f[1], Object: f[2]}
	case fs.NArg() == 1:
		req = api.SubscribeRequest{Kind: api.SubscriptionKindConjunctive, Query: fs.Arg(0)}
		if *output != "" {
			req.Output = strings.Split(*output, ",")
			for i := range req.Output {
				req.Output[i] = strings.TrimSpace(req.Output[i])
			}
		}
	default:
		return fmt.Errorf("watch: want -lineage ENTITY, -dependents ENTITY, -triple \"S P O\", or one Datalog conjunction")
	}

	c := api.NewClient(*server, nil)
	sub, err := c.Subscribe(req)
	if err != nil {
		return err
	}
	fmt.Printf("subscribed %s: %d item(s)\n", sub.ID, len(sub.Items))
	for _, it := range sub.Items {
		fmt.Println("  " + it)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if !*keep {
		defer c.Unsubscribe(sub.ID)
	}

	printEvent := func(ev api.SubscriptionEvent) error {
		switch ev.Type {
		case api.SubscriptionEventAdd:
			for _, it := range ev.Items {
				fmt.Println("+ " + it)
			}
		case api.SubscriptionEventRemove:
			for _, it := range ev.Items {
				fmt.Println("- " + it)
			}
		case api.SubscriptionEventGap:
			fmt.Println("! gap: fell behind the replay buffer; re-snapshot follows")
		case api.SubscriptionEventSnapshot:
			fmt.Printf("= snapshot: %d item(s)\n", len(ev.Items))
			for _, it := range ev.Items {
				fmt.Println("  " + it)
			}
		}
		return nil
	}

	from := sub.Seq
	if *poll {
		for ctx.Err() == nil {
			evs, err := c.PollSubscriptionEvents(sub.ID, from, 10*time.Second)
			if err != nil {
				if ctx.Err() != nil {
					break
				}
				return err
			}
			for _, ev := range evs {
				_ = printEvent(ev)
				from = ev.Seq
			}
		}
		return nil
	}
	attempt := 0
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for ctx.Err() == nil {
		last, err := c.WatchSubscription(ctx, sub.ID, from, printEvent)
		if last > from {
			attempt = 0 // the connection made progress; start backoff over
		}
		from = last
		if ctx.Err() != nil {
			break
		}
		var rerr *api.RemoteError
		if errors.As(err, &rerr) {
			return err // e.g. the subscription was deleted server-side
		}
		// Transient drop or server restart: resume after the last sequence
		// we saw (the server answers an eviction with gap + re-snapshot),
		// under capped jittered backoff so a dead server is probed gently
		// and a restarted fleet is not reconnected to in lockstep.
		attempt++
		delay := watchBackoff(attempt, rng.Float64())
		if err != nil {
			fmt.Fprintf(os.Stderr, "provctl: watch: %v (reconnecting in %s)\n", err, delay.Round(10*time.Millisecond))
		}
		select {
		case <-ctx.Done():
		case <-time.After(delay):
		}
	}
	return nil
}

// Watch reconnect backoff bounds: doubling from the base per
// consecutive failed attempt, capped, with ±25% jitter.
const (
	watchBackoffBase = 500 * time.Millisecond
	watchBackoffMax  = 15 * time.Second
)

// watchBackoff returns the reconnect delay before the attempt-th
// consecutive retry (1-based). jitter is a uniform draw in [0,1);
// the result is the exponential delay scaled into [75%, 125%).
func watchBackoff(attempt int, jitter float64) time.Duration {
	d := watchBackoffBase
	for i := 1; i < attempt && d < watchBackoffMax; i++ {
		d *= 2
	}
	if d > watchBackoffMax {
		d = watchBackoffMax
	}
	return time.Duration(float64(d) * (0.75 + jitter/2))
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	storeDir := fs.String("store", "", "provenance store directory")
	runID := fs.String("run", "", "run ID to export")
	format := fs.String("format", "opm-xml", "opm-xml, opm-json or dot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" || *runID == "" {
		return fmt.Errorf("export: want -store DIR and -run ID")
	}
	fsStore, err := store.OpenFileStore(*storeDir)
	if err != nil {
		return err
	}
	defer fsStore.Close()
	l, err := fsStore.RunLog(*runID)
	if err != nil {
		return err
	}
	switch *format {
	case "dot":
		text, err := vis.ProvenanceDOT(l)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	case "opm-xml", "opm-json":
		g, err := opm.FromRunLog(l, "provctl")
		if err != nil {
			return err
		}
		var data []byte
		if *format == "opm-xml" {
			data, err = opm.EncodeXML(g)
		} else {
			data, err = opm.EncodeJSON(g)
		}
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	return fmt.Errorf("export: unknown format %q", *format)
}

func cmdDemo(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("demo: want a workflow name (medimg, medimg-smooth, genomics, forecast, dl-render)")
	}
	var wf *workflow.Workflow
	switch args[0] {
	case "medimg":
		wf = workloads.MedicalImaging()
	case "medimg-smooth":
		wf = workloads.SmoothedImaging()
	case "genomics":
		wf = workloads.Genomics("sample-1")
	case "forecast":
		wf = workloads.Forecasting("station-A")
	case "dl-render":
		wf = workloads.DownloadAndRender()
	default:
		return fmt.Errorf("demo: unknown workflow %q", args[0])
	}
	data, err := workflow.EncodeJSON(wf)
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// cmdStatus prints a provd's identity block from /v1/status: role, uptime,
// store configuration and the binary's embedded build info.
func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	server := fs.String("server", "http://localhost:8080", "provd base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("status: want -server URL only")
	}
	ns, err := api.NewClient(*server, nil).NodeStatus()
	if err != nil {
		return err
	}
	role := ns.Role
	if ns.Fenced {
		role += " (FENCED: a higher-epoch primary exists)"
	}
	fmt.Printf("role: %s\n", role)
	if ns.Epoch > 0 {
		fmt.Printf("epoch: %d\n", ns.Epoch)
	}
	if ns.ReplicaState != "" {
		fmt.Printf("replication: %s, %d bytes behind the primary\n", ns.ReplicaState, ns.ReplicaLagBytes)
	}
	fmt.Printf("uptime: %s\n", (time.Duration(ns.UptimeSeconds * float64(time.Second))).Round(time.Second))
	if ns.StoreDir != "" {
		fmt.Printf("store: %s\n", ns.StoreDir)
	} else {
		fmt.Println("store: in-memory")
	}
	fmt.Printf("shards: %d\n", ns.Shards)
	if ns.Durability != "" {
		fmt.Printf("durability: %s\n", ns.Durability)
	}
	if ns.Checkpoint != "" {
		fmt.Printf("checkpoint: %s\n", ns.Checkpoint)
	}
	fmt.Printf("closure cache: %v\n", ns.ClosureCache)
	build := ns.GoVersion
	if ns.Version != "" {
		build += " " + ns.Version
	}
	if ns.Revision != "" {
		build += " (" + ns.Revision + ")"
	}
	fmt.Printf("build: %s\n", build)
	return nil
}

// cmdMetrics fetches /v1/metrics. One-shot mode prints the Prometheus
// exposition verbatim (optionally filtered); -watch polls and prints only
// the series whose values changed since the previous poll, as
// "name{labels} value (delta)" — a poor man's rate() for a terminal.
func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	server := fs.String("server", "http://localhost:8080", "provd base URL")
	watch := fs.Bool("watch", false, "poll repeatedly, printing per-interval deltas of changed series")
	interval := fs.Duration("interval", 2*time.Second, "poll interval with -watch")
	grep := fs.String("grep", "", "only print series whose name contains this substring")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("metrics: unexpected arguments %v", fs.Args())
	}
	client := api.NewClient(*server, nil)

	if !*watch {
		text, err := client.MetricsText()
		if err != nil {
			return err
		}
		for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
			if *grep != "" && !strings.Contains(metricName(line), *grep) {
				continue
			}
			fmt.Println(line)
		}
		return nil
	}

	prev, err := scrapeSeries(client, *grep)
	if err != nil {
		return err
	}
	for {
		time.Sleep(*interval)
		cur, err := scrapeSeries(client, *grep)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(cur))
		for name, v := range cur {
			if pv, ok := prev[name]; !ok || pv != v {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		fmt.Printf("--- %s\n", time.Now().Format("15:04:05"))
		for _, name := range names {
			if pv, ok := prev[name]; ok {
				fmt.Printf("%s %s (%+g)\n", name, strconv.FormatFloat(cur[name], 'g', -1, 64), cur[name]-pv)
			} else {
				fmt.Printf("%s %s (new)\n", name, strconv.FormatFloat(cur[name], 'g', -1, 64))
			}
		}
		prev = cur
	}
}

// metricName extracts the metric name an exposition line is about — the
// third field of a "# HELP name …"/"# TYPE name …" comment, or the series
// name up to its label set — so -grep filters families, comments included.
func metricName(line string) string {
	if strings.HasPrefix(line, "#") {
		if f := strings.Fields(line); len(f) >= 3 {
			return f[2]
		}
		return ""
	}
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		return line[:i]
	}
	return line
}

// scrapeSeries fetches and parses one exposition into series → value,
// keeping only series whose metric name contains grep (when non-empty).
func scrapeSeries(client *api.Client, grep string) (map[string]float64, error) {
	text, err := client.MetricsText()
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		name, val := line[:sp], line[sp+1:]
		if grep != "" && !strings.Contains(name, grep) {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			continue
		}
		out[name] = f
	}
	return out, nil
}
