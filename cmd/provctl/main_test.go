package main

import (
	"testing"
	"time"
)

func TestWatchBackoffGrowsAndCaps(t *testing.T) {
	// jitter 0.5 is the neutral draw: scale factor exactly 1.
	want := []time.Duration{
		500 * time.Millisecond,
		1 * time.Second,
		2 * time.Second,
		4 * time.Second,
		8 * time.Second,
		15 * time.Second, // capped, not 16s
		15 * time.Second,
	}
	for i, w := range want {
		if got := watchBackoff(i+1, 0.5); got != w {
			t.Errorf("watchBackoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestWatchBackoffJitterBounds(t *testing.T) {
	for _, attempt := range []int{1, 3, 10} {
		lo := watchBackoff(attempt, 0)
		hi := watchBackoff(attempt, 0.999999)
		mid := watchBackoff(attempt, 0.5)
		if lo != time.Duration(float64(mid)*0.75) {
			t.Errorf("attempt %d: low jitter %v, want 75%% of %v", attempt, lo, mid)
		}
		if hi >= time.Duration(float64(mid)*1.25)+time.Millisecond {
			t.Errorf("attempt %d: high jitter %v exceeds 125%% of %v", attempt, hi, mid)
		}
		if lo >= hi {
			t.Errorf("attempt %d: jitter range degenerate: [%v, %v]", attempt, lo, hi)
		}
	}
}
