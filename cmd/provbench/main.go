// Command provbench runs the reproduction experiment suite (E1–E13 of
// DESIGN.md) and prints each experiment's table. EXPERIMENTS.md records a
// reference run.
//
// Usage:
//
//	provbench             # run everything
//	provbench -e E4,E7    # run selected experiments
//	provbench -list       # list experiments
//	provbench -json DIR   # also write machine-readable BENCH_<ID>.json
//
// With -json, each experiment's structured metrics land in
// DIR/BENCH_<ID>.json so successive PRs can track a perf trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		which   = flag.String("e", "", "comma-separated experiment IDs (default: all)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		jsonDir = flag.String("json", "", "write BENCH_<ID>.json files to this directory")
	)
	flag.Parse()

	if *list {
		for _, r := range []string{
			"E1  Figure 1: prospective vs retrospective provenance",
			"E2  Figure 2: workflow refinement by analogy",
			"E3  capture overhead",
			"E4  lineage query latency per backend",
			"E5  user views: overload reduction",
			"E6  query languages on the same lineage",
			"E7  Provenance Challenge integration",
			"E8  version-tree scaling",
			"E9  why-provenance overhead",
			"E10 parameter sweep throughput",
			"E11 storage footprint per backend",
			"E12 collaboratory search + recommendation",
			"E13 incremental closure maintenance (closure cache)",
		} {
			fmt.Println(r)
		}
		return
	}

	var results []experiments.Result
	if *which == "" {
		results = experiments.All()
	} else {
		for _, id := range strings.Split(*which, ",") {
			r, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			results = append(results, r)
		}
	}
	for _, r := range results {
		fmt.Printf("=== %s: %s ===\n%s\n", r.ID, r.Title, r.Table)
	}
	if *jsonDir != "" {
		if err := writeJSON(*jsonDir, results); err != nil {
			fmt.Fprintln(os.Stderr, "provbench:", err)
			os.Exit(1)
		}
	}
}

// benchFile is the on-disk shape of one BENCH_<ID>.json record.
type benchFile struct {
	ID      string               `json:"id"`
	Title   string               `json:"title"`
	Metrics []experiments.Metric `json:"metrics"`
	Table   string               `json:"table"`
}

func writeJSON(dir string, results []experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range results {
		data, err := json.MarshalIndent(benchFile{
			ID: r.ID, Title: r.Title, Metrics: r.Metrics, Table: r.Table,
		}, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "BENCH_"+r.ID+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "provbench: wrote %s\n", path)
	}
	return nil
}
