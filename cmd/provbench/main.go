// Command provbench runs the reproduction experiment suite (E1–E12 of
// DESIGN.md) and prints each experiment's table. EXPERIMENTS.md records a
// reference run.
//
// Usage:
//
//	provbench             # run everything
//	provbench -e E4,E7    # run selected experiments
//	provbench -list       # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		which = flag.String("e", "", "comma-separated experiment IDs (default: all)")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range []string{
			"E1  Figure 1: prospective vs retrospective provenance",
			"E2  Figure 2: workflow refinement by analogy",
			"E3  capture overhead",
			"E4  lineage query latency per backend",
			"E5  user views: overload reduction",
			"E6  query languages on the same lineage",
			"E7  Provenance Challenge integration",
			"E8  version-tree scaling",
			"E9  why-provenance overhead",
			"E10 parameter sweep throughput",
			"E11 storage footprint per backend",
			"E12 collaboratory search + recommendation",
		} {
			fmt.Println(r)
		}
		return
	}

	var results []experiments.Result
	if *which == "" {
		results = experiments.All()
	} else {
		for _, id := range strings.Split(*which, ",") {
			r, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			results = append(results, r)
		}
	}
	for _, r := range results {
		fmt.Printf("=== %s: %s ===\n%s\n", r.ID, r.Title, r.Table)
	}
}
