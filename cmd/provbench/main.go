// Command provbench runs the reproduction experiment suite (E1–E21 of
// DESIGN.md) and prints each experiment's table. EXPERIMENTS.md records a
// reference run.
//
// Usage:
//
//	provbench             # run everything
//	provbench -e E4,E7    # run selected experiments
//	provbench -list       # list experiments
//	provbench -json DIR   # also write machine-readable BENCH_<ID>.json
//	provbench -check DIR  # bench regression gate against a baseline DIR
//
// With -json, each experiment's structured metrics land in
// DIR/BENCH_<ID>.json so successive PRs can track a perf trajectory.
//
// With -check, the gated metrics (see gates) of the freshly run
// experiments are compared against the committed baseline BENCH_<ID>.json
// files in DIR; the process exits 1 when any gated metric regresses beyond
// its tolerance. Gated metrics are machine-speed-independent ratios
// (speedups), so the gate is robust across hosts; the tolerances absorb
// normal scheduler noise and still catch architectural regressions.
// `make bench-gate` wires this into CI, `make bench-baseline` refreshes
// the committed baseline deliberately.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

// gates names the bench-regression metrics CI enforces: a fresh value must
// be at least minRatio × the committed baseline value. All gated metrics
// are higher-is-better speedup ratios.
var gates = []struct {
	experiment string
	metric     string
	minRatio   float64
}{
	{"E13", "closure_warm_speedup_file_d128", 0.4},
	// Wall-clock-window metric on shared CI runners: the loose tolerance
	// keeps the floor below the 1.5x acceptance threshold (it guards
	// against sharding collapsing toward parity, not against noise).
	{"E14", "ingest_mixed_speedup_shards4", 0.3},
	// Group commit: the fsync-reduction ratio is scheduling-dependent
	// (how many writers join a batch while the previous fsync is in
	// flight), the ingest speedup additionally depends on the host's
	// fsync cost; both collapse toward 1.0 if batching breaks.
	{"E15", "ingest_group_speedup_x", 0.3},
	{"E15", "fsync_reduction_x", 0.3},
	// Warm restart: reopen-from-checkpoint vs full log replay.
	{"E15", "reopen_warm_speedup_x", 0.3},
	// Closure pushdown vs the per-hop scatter/gather path on the deep
	// chain; wall-clock ratio on shared runners gets a loose floor.
	{"E16", "deep_closure_pushdown_speedup_x", 0.3},
	// Rounds executed are deterministic for the fixed E16 chain (hash
	// placement does not move between runs), so the reduction ratio gets
	// a tight floor: it collapses to ~1 only if the pushdown stops
	// exchanging frontiers and degrades to per-hop rounds.
	{"E16", "deep_closure_rounds_reduction_x", 0.9},
	// Streaming executor vs eager materialization on the E17 join
	// battery: wall-clock and allocation ratios both collapse toward 1.0
	// if the planner stops pushing selections below joins or the
	// iterators start materializing intermediates again. Loose floors
	// absorb shared-runner noise; the baseline ratios are ~3x.
	{"E17", "exec_streaming_speedup_x", 0.3},
	{"E17", "exec_alloc_reduction_x", 0.3},
	// The Datalog fixpoint ratio is an order of magnitude (hash joins vs
	// nested unification), so even the loose floor only trips on an
	// architectural regression such as falling back to the reference
	// evaluator.
	{"E17", "datalog_streaming_speedup_x", 0.3},
	// Log-shipping replication: aggregate read capacity with two followers
	// over the unreplicated baseline, node-at-a-time windows summed. The
	// baseline ratio is ~2x on a one-core runner (~3x with real cores);
	// the loose floor trips only if followers stop serving reads or
	// catch-up stops converging (the experiment errors outright then).
	{"E18", "replica_read_scaleout_x", 0.3},
	// Observability overhead: instrumented vs gated-off throughput on the
	// mixed ingest+closure workload. The emitted ratio is clamped to 1.0
	// (a noisy host often flips the coin the instrumented way), so the
	// gate is tight: tripping it means real per-op cost crept into the
	// metrics hot path — an extra allocation, a lock, an unconditional
	// clock read.
	{"E19", "obs_overhead_ratio", 0.95},
	// Standing queries: incremental maintenance vs re-running all 64
	// subscriptions after every ingest. The baseline ratio is two orders
	// of magnitude, so the loose floor only trips on an architectural
	// regression — maintenance degrading to per-sub re-evaluation or the
	// pattern index stopping to narrow the affected set.
	{"E20", "standing_delta_vs_requery_speedup_x", 0.3},
	// Failover: these are correctness-style ratios (1.0 by construction),
	// so the floors are tight. A convergence drop means log shipping tore
	// or skipped bytes under injected faults; a fence drop means a cutover
	// left two writable primaries (split brain).
	{"E21", "chaos_convergence_ratio", 0.99},
	{"E21", "failover_fence_ratio", 0.99},
}

func main() {
	var (
		which    = flag.String("e", "", "comma-separated experiment IDs (default: all)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		jsonDir  = flag.String("json", "", "write BENCH_<ID>.json files to this directory")
		checkDir = flag.String("check", "", "compare gated metrics against baseline BENCH_<ID>.json files in this directory")
	)
	flag.Parse()

	if *list {
		for _, r := range []string{
			"E1  Figure 1: prospective vs retrospective provenance",
			"E2  Figure 2: workflow refinement by analogy",
			"E3  capture overhead",
			"E4  lineage query latency per backend",
			"E5  user views: overload reduction",
			"E6  query languages on the same lineage",
			"E7  Provenance Challenge integration",
			"E8  version-tree scaling",
			"E9  why-provenance overhead",
			"E10 parameter sweep throughput",
			"E11 storage footprint per backend",
			"E12 collaboratory search + recommendation",
			"E13 incremental closure maintenance (closure cache)",
			"E14 sharded store: ingest + closure scaling vs shard count",
			"E15 WAL group commit + checkpoint: durable ingest and warm restarts",
			"E16 closure pushdown: deep sharded lineage, local fixpoints + frontier exchange",
			"E17 streaming query executor: lazy iterators + pushdown vs eager materialization",
			"E18 log-shipping replication: follower read scale-out + ingest retention",
			"E19 observability overhead: instrumented vs gated-off, percentiles from live histograms",
			"E20 standing queries: incremental maintenance vs per-ingest re-query",
			"E21 failover: chaos partition recovery, promotion cutover, fencing",
		} {
			fmt.Println(r)
		}
		return
	}

	var results []experiments.Result
	if *which == "" {
		results = experiments.All()
	} else {
		for _, id := range strings.Split(*which, ",") {
			r, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			results = append(results, r)
		}
	}
	for _, r := range results {
		fmt.Printf("=== %s: %s ===\n%s\n", r.ID, r.Title, r.Table)
	}
	if *jsonDir != "" {
		if err := writeJSON(*jsonDir, results); err != nil {
			fmt.Fprintln(os.Stderr, "provbench:", err)
			os.Exit(1)
		}
	}
	if *checkDir != "" {
		if !check(*checkDir, results, os.Stderr) {
			os.Exit(1)
		}
	}
}

// benchFile is the on-disk shape of one BENCH_<ID>.json record.
type benchFile struct {
	ID      string               `json:"id"`
	Title   string               `json:"title"`
	Metrics []experiments.Metric `json:"metrics"`
	Table   string               `json:"table"`
}

func writeJSON(dir string, results []experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range results {
		data, err := json.MarshalIndent(benchFile{
			ID: r.ID, Title: r.Title, Metrics: r.Metrics, Table: r.Table,
		}, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "BENCH_"+r.ID+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "provbench: wrote %s\n", path)
	}
	return nil
}

// check compares every gated metric of the fresh results against the
// baseline directory, printing one verdict line per gate to w. It returns
// false when a gated metric is missing, its baseline file is absent, or it
// regresses beyond its tolerance — every failure names its cause and the
// fix, never a panic or a silent skip.
func check(dir string, results []experiments.Result, w io.Writer) bool {
	fresh := map[string]experiments.Result{}
	for _, r := range results {
		fresh[r.ID] = r
	}
	ok := true
	for _, g := range gates {
		r, ran := fresh[g.experiment]
		if !ran {
			fmt.Fprintf(w, "gate %s/%s: FAIL (experiment not run; include it via -e)\n", g.experiment, g.metric)
			ok = false
			continue
		}
		cur, found := metricValue(r.Metrics, g.metric)
		if !found {
			fmt.Fprintf(w, "gate %s/%s: FAIL (metric missing from fresh run)\n", g.experiment, g.metric)
			ok = false
			continue
		}
		path := filepath.Join(dir, "BENCH_"+g.experiment+".json")
		data, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			// A gate without its committed baseline is a broken gate, not
			// a skippable one: fail with the remediation spelled out.
			fmt.Fprintf(w, "gate %s/%s: FAIL (no baseline %s — run `make bench-baseline` and commit the result)\n",
				g.experiment, g.metric, path)
			ok = false
			continue
		}
		if err != nil {
			fmt.Fprintf(w, "gate %s/%s: FAIL (baseline: %v)\n", g.experiment, g.metric, err)
			ok = false
			continue
		}
		var base benchFile
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(w, "gate %s/%s: FAIL (baseline %s unreadable: %v — refresh it with `make bench-baseline`)\n",
				g.experiment, g.metric, path, err)
			ok = false
			continue
		}
		want, found := metricValue(base.Metrics, g.metric)
		if !found {
			fmt.Fprintf(w, "gate %s/%s: FAIL (metric missing from baseline %s — refresh it with `make bench-baseline`)\n",
				g.experiment, g.metric, path)
			ok = false
			continue
		}
		floor := want * g.minRatio
		if cur < floor {
			fmt.Fprintf(w, "gate %s/%s: FAIL (%.3f < %.3f = baseline %.3f × %.2f)\n",
				g.experiment, g.metric, cur, floor, want, g.minRatio)
			ok = false
			continue
		}
		fmt.Fprintf(w, "gate %s/%s: ok (%.3f vs baseline %.3f, floor %.3f)\n",
			g.experiment, g.metric, cur, want, floor)
	}
	return ok
}

func metricValue(ms []experiments.Metric, name string) (float64, bool) {
	for _, m := range ms {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}
