package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// fakeResults fabricates fresh results carrying every gated metric at the
// given value.
func fakeResults(value float64) []experiments.Result {
	byExp := map[string][]experiments.Metric{}
	for _, g := range gates {
		byExp[g.experiment] = append(byExp[g.experiment], experiments.Metric{Name: g.metric, Value: value, Unit: "x"})
	}
	var out []experiments.Result
	for id, ms := range byExp {
		out = append(out, experiments.Result{ID: id, Title: id, Metrics: ms})
	}
	return out
}

func writeBaseline(t *testing.T, dir string, value float64) {
	t.Helper()
	for _, r := range fakeResults(value) {
		data, err := json.Marshal(benchFile{ID: r.ID, Title: r.Title, Metrics: r.Metrics})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "BENCH_"+r.ID+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckMissingBaselineFailsLoudly is the regression test for the
// nil-baseline path: a gate whose baseline file is absent must fail with
// an actionable message, not panic or silently pass.
func TestCheckMissingBaselineFailsLoudly(t *testing.T) {
	dir := t.TempDir() // empty: no baseline files at all
	var out strings.Builder
	if check(dir, fakeResults(2.0), &out) {
		t.Fatalf("check passed with no baseline files:\n%s", out.String())
	}
	msg := out.String()
	if !strings.Contains(msg, "no baseline") || !strings.Contains(msg, "make bench-baseline") {
		t.Fatalf("missing-baseline failure is not actionable:\n%s", msg)
	}
	// Every known gate must have reported, none skipped.
	for _, g := range gates {
		if !strings.Contains(msg, g.experiment+"/"+g.metric) {
			t.Fatalf("gate %s/%s missing from output:\n%s", g.experiment, g.metric, msg)
		}
	}
}

// TestCheckCorruptBaselineFailsLoudly covers the unreadable-baseline path.
func TestCheckCorruptBaselineFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	for _, g := range gates {
		if err := os.WriteFile(filepath.Join(dir, "BENCH_"+g.experiment+".json"), []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var out strings.Builder
	if check(dir, fakeResults(2.0), &out) {
		t.Fatal("check passed with corrupt baselines")
	}
	if !strings.Contains(out.String(), "unreadable") {
		t.Fatalf("corrupt-baseline failure unclear:\n%s", out.String())
	}
}

// TestCheckPassAndRegress covers the healthy pass and the regression trip.
func TestCheckPassAndRegress(t *testing.T) {
	dir := t.TempDir()
	writeBaseline(t, dir, 2.0)
	var out strings.Builder
	if !check(dir, fakeResults(2.0), &out) {
		t.Fatalf("check failed against equal baseline:\n%s", out.String())
	}
	out.Reset()
	// Far below every gate's floor (min ratio ≥ 0.3 of 2.0).
	if check(dir, fakeResults(0.1), &out) {
		t.Fatalf("regression not caught:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("regression output lacks FAIL verdict:\n%s", out.String())
	}
	out.Reset()
	// An experiment that never ran must fail its gates, not skip them.
	if check(dir, nil, &out) {
		t.Fatal("check passed with no experiments run")
	}
	if !strings.Contains(out.String(), "not run") {
		t.Fatalf("not-run failure unclear:\n%s", out.String())
	}
}
