// Package repro's benchmark harness: one testing.B benchmark per experiment
// of DESIGN.md §3 (E1–E13). cmd/provbench prints the full human-readable
// tables; these benches regenerate the underlying measurements under `go
// test -bench`. Sizes are the mid-points of each experiment's sweep so the
// full suite completes quickly.
package repro

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/analogy"
	"repro/internal/collab"
	"repro/internal/collab/api"
	"repro/internal/engine"
	"repro/internal/evolution"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/interop"
	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/provenance"
	"repro/internal/query/datalog"
	"repro/internal/query/pql"
	"repro/internal/query/standing"
	"repro/internal/relalg"
	"repro/internal/store"
	"repro/internal/store/closurecache"
	"repro/internal/store/replica"
	"repro/internal/store/shardedstore"
	"repro/internal/store/wal"
	"repro/internal/views"
	"repro/internal/workloads"
)

func newBenchEngine(rec provenance.Recorder, cache *engine.Cache) *engine.Engine {
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	return engine.New(engine.Options{Registry: reg, Recorder: rec, Cache: cache, Workers: 4})
}

// chainLog runs an n-module chain once and returns the log plus the final
// artifact ID.
func chainLog(b *testing.B, n int) (*provenance.RunLog, string) {
	b.Helper()
	col := provenance.NewCollector()
	e := newBenchEngine(col, nil)
	res, err := e.Run(context.Background(), workloads.Chain(n), nil)
	if err != nil {
		b.Fatal(err)
	}
	log, err := col.Log(res.RunID)
	if err != nil {
		b.Fatal(err)
	}
	return log, res.Artifacts[fmt.Sprintf("s%02d.out", n-1)]
}

// BenchmarkE1CaptureFigure1 executes the Figure 1 workflow with capture on.
func BenchmarkE1CaptureFigure1(b *testing.B) {
	wf := workloads.MedicalImaging()
	col := provenance.NewCollector()
	e := newBenchEngine(col, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(context.Background(), wf, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2Analogy applies the Figure 2 diff to a fresh target.
func BenchmarkE2Analogy(b *testing.B) {
	wa := workloads.DownloadAndRender()
	wb := workloads.DownloadAndRenderSmoothed()
	d := analogy.ComputeDiff(wa, wb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analogy.Apply(d, workloads.MedicalImaging()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3CaptureOverhead benchmarks a 50-module chain with capture
// on/off as sub-benchmarks.
func BenchmarkE3CaptureOverhead(b *testing.B) {
	wf := workloads.Chain(50)
	b.Run("capture=off", func(b *testing.B) {
		e := newBenchEngine(nil, nil)
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(context.Background(), wf, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("capture=on", func(b *testing.B) {
		e := newBenchEngine(provenance.NewCollector(), nil)
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(context.Background(), wf, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE4QueryLatency benchmarks lineage on a 100-module chain per
// backend.
func BenchmarkE4QueryLatency(b *testing.B) {
	log, target := chainLog(b, 100)
	fsDir := b.TempDir()
	fs, err := store.OpenFileStore(fsDir)
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close()
	backends := []store.Store{store.NewMemStore(), store.NewRelStore(), store.NewTripleStore(), fs}
	for _, s := range backends {
		if err := s.PutRunLog(log); err != nil {
			b.Fatal(err)
		}
		b.Run("backend="+s.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := store.Lineage(s, target); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4bBatchVsPerEdge quantifies the batch-traversal win: the same
// depth-128 lineage closure once through the per-edge reference BFS (one
// navigation call per node — on the file backend each call used to re-read
// the run log from disk) and once through the pushed-down batch Closure
// (O(hops) backend calls; zero disk reads on the file backend).
func BenchmarkE4bBatchVsPerEdge(b *testing.B) {
	log, target := chainLog(b, 128)
	fs, err := store.OpenFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close()
	backends := []store.Store{store.NewMemStore(), store.NewRelStore(), store.NewTripleStore(), fs}
	for _, s := range backends {
		if err := s.PutRunLog(log); err != nil {
			b.Fatal(err)
		}
		b.Run("backend="+s.Name()+"/mode=peredge", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := store.NaiveClosure(s, target, store.Up); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("backend="+s.Name()+"/mode=batch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Closure(target, store.Up); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5UserViews benchmarks abstraction of a 24-module chain run.
func BenchmarkE5UserViews(b *testing.B) {
	log, _ := chainLog(b, 24)
	v := views.NewView("bench")
	for i := 0; i < 24; i += 4 {
		var members []string
		for j := i; j < i+4; j++ {
			members = append(members, fmt.Sprintf("s%02d", j))
		}
		if err := v.Group(fmt.Sprintf("c%d", i/4), members...); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Abstract(log); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6QueryLanguages benchmarks the same lineage in each language.
func BenchmarkE6QueryLanguages(b *testing.B) {
	log, target := chainLog(b, 60)
	mem := store.NewMemStore()
	if err := mem.PutRunLog(log); err != nil {
		b.Fatal(err)
	}
	b.Run("lang=bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := store.Lineage(mem, target); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lang=pql", func(b *testing.B) {
		q := fmt.Sprintf("LINEAGE OF '%s'", target)
		for i := 0; i < b.N; i++ {
			if _, err := pql.Run(mem, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lang=datalog", func(b *testing.B) {
		atom, err := datalog.ParseAtom(fmt.Sprintf("ancestor('%s', X)", target))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			p, err := datalog.NewProvenanceProgram(mem)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Query(atom); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7Interop benchmarks the full pipeline→export→integrate cycle.
func BenchmarkE7Interop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := interop.RunPipeline(4)
		if err != nil {
			b.Fatal(err)
		}
		graphs, err := interop.SystemGraphs(runs)
		if err != nil {
			b.Fatal(err)
		}
		merged, err := interop.Integrate(graphs...)
		if err != nil {
			b.Fatal(err)
		}
		if r := interop.RunSuite("integrated", merged); r.Answered != r.Total {
			b.Fatalf("integration regressed: %d/%d", r.Answered, r.Total)
		}
	}
}

// BenchmarkE8Evolution benchmarks materialization at depth 1000.
func BenchmarkE8Evolution(b *testing.B) {
	tree := evolution.NewTree("bench")
	at, err := tree.Commit(tree.Root(), "u", "import",
		evolution.ImportWorkflow(workloads.MedicalImaging()))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		at, err = tree.Commit(at, "u", "",
			[]evolution.Action{evolution.SetParamAction("contour", "isovalue", fmt.Sprint(i))})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Materialize(at); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9DBProvenance benchmarks a provenance-tracking join of 500×500.
func BenchmarkE9DBProvenance(b *testing.B) {
	n := 500
	left := make([][]relalg.Val, n)
	right := make([][]relalg.Val, n)
	for i := 0; i < n; i++ {
		left[i] = []relalg.Val{int64(i % 50), int64(i)}
		right[i] = []relalg.Val{int64(i % 50), int64(1000 + i)}
	}
	l, err := relalg.NewRelation("l", []string{"k", "x"}, left)
	if err != nil {
		b.Fatal(err)
	}
	r, err := relalg.NewRelation("r", []string{"k", "y"}, right)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relalg.Join(l, r, "k", "k"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10ParamSweep benchmarks a 6-point sweep with caching.
func BenchmarkE10ParamSweep(b *testing.B) {
	base := workloads.Chain(6)
	for i := 0; i < 6; i++ {
		if err := base.SetParam(fmt.Sprintf("s%02d", i), "work", "500"); err != nil {
			b.Fatal(err)
		}
	}
	sweep := &params.Sweep{
		Base: base,
		Axes: []params.Axis{{ModuleID: "s05", Param: "work",
			Values: []string{"501", "502", "503", "504", "505", "506"}}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := newBenchEngine(nil, engine.NewCache())
		if _, err := params.Run(context.Background(), e, sweep, params.Options{Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11StorageFootprint benchmarks ingesting a run into each backend.
func BenchmarkE11StorageFootprint(b *testing.B) {
	log, _ := chainLog(b, 50)
	b.Run("backend=mem", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := store.NewMemStore()
			if err := s.PutRunLog(log); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("backend=rel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := store.NewRelStore()
			if err := s.PutRunLog(log); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("backend=triple", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := store.NewTripleStore()
			if err := s.PutRunLog(log); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("backend=file", func(b *testing.B) {
		dir := b.TempDir()
		s, err := store.OpenFileStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		for i := 0; i < b.N; i++ {
			cp := *log
			cp.Run.ID = fmt.Sprintf("%s-b%d", log.Run.ID, i)
			if err := s.PutRunLog(&cp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE12Collaboratory benchmarks search and recommendation on a
// synthesized community.
func BenchmarkE12Collaboratory(b *testing.B) {
	repo := collab.NewRepository(store.NewMemStore())
	users, err := collab.SynthesizeCommunity(repo, collab.CommunityOptions{Seed: 3, Users: 20, RunsEach: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("op=search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			repo.Search("visualization imaging", 10)
		}
	})
	b.Run("op=recommend", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			repo.Recommend(users[i%len(users)], 3)
		}
	})
}

// BenchmarkE13ClosureCache quantifies incremental closure maintenance on
// the file backend at depth 128: mode=cold recomputes the pushed-down
// closure every query, mode=warm hits the memoized closure, and
// mode=ingestpatch pays one ingest whose new edges patch a warm downstream
// closure in place (the cost invalidation would otherwise turn into a full
// recompute on the next query).
func BenchmarkE13ClosureCache(b *testing.B) {
	log, target := chainLog(b, 128)
	head := log.Artifacts[0].ID // the chain's first artifact: upstream of everything
	fs, err := store.OpenFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close()
	cached := closurecache.Wrap(fs)
	if err := cached.PutRunLog(log); err != nil {
		b.Fatal(err)
	}
	b.Run("mode=cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fs.Closure(target, store.Up); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mode=warm", func(b *testing.B) {
		if _, err := cached.Closure(target, store.Up); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cached.Closure(target, store.Up); err != nil {
				b.Fatal(err)
			}
		}
	})
	extSeq := 0 // unique IDs across the harness's repeated b.N runs
	b.Run("mode=ingestpatch", func(b *testing.B) {
		// Warm the downstream closure the extensions will attach to.
		if _, err := cached.Closure(head, store.Down); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			extSeq++
			runID := fmt.Sprintf("bext-%06d", extSeq)
			exec := fmt.Sprintf("bext-exec-%06d", extSeq)
			out := fmt.Sprintf("bext-art-%06d", extSeq)
			ext := &provenance.RunLog{}
			ext.Run = provenance.Run{ID: runID, WorkflowID: "ext", Status: provenance.StatusOK}
			ext.Executions = []*provenance.Execution{{ID: exec, RunID: runID, ModuleID: "ext", ModuleType: "Ext", Status: provenance.StatusOK}}
			ext.Artifacts = []*provenance.Artifact{
				{ID: target, RunID: runID, Type: "blob"},
				{ID: out, RunID: runID, Type: "blob"},
			}
			ext.Events = []provenance.Event{
				{Seq: 1, RunID: runID, Kind: provenance.EventArtifactUsed, ExecutionID: exec, ArtifactID: target},
				{Seq: 2, RunID: runID, Kind: provenance.EventArtifactGen, ExecutionID: exec, ArtifactID: out},
			}
			if err := cached.PutRunLog(ext); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if m := cached.Metrics(); m.Patched == 0 {
			b.Fatalf("ingests never patched a cached closure: %+v", m)
		}
	})
}

// BenchmarkE14Sharding measures the sharded store router at 1/2/4/8
// durable file-backed shards on the E14 wide-DAG workload: mode=ingest is
// one batch of 16 runs pushed by 8 concurrent publishers per iteration
// (runs hash-route to their home shards, commits overlap across shards);
// mode=closure is the scatter/gather downstream closure of the seed root.
func BenchmarkE14Sharding(b *testing.B) {
	for _, nShards := range []int{1, 2, 4, 8} {
		r, err := shardedstore.Open(b.TempDir(), nShards, true)
		if err != nil {
			b.Fatal(err)
		}
		seedLogs, lastLayer := experiments.E14Seed(4, 16, 3)
		for _, l := range seedLogs {
			if err := r.PutRunLog(l); err != nil {
				b.Fatal(err)
			}
		}
		batch := 0
		b.Run(fmt.Sprintf("shards=%d/mode=ingest", nShards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				batch++
				var wg sync.WaitGroup
				for w := 0; w < 8; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for k := 0; k < 2; k++ {
							l := experiments.E14Run(fmt.Sprintf("b%d-%d-%d", batch, w, k), batch,
								lastLayer[(batch+w+k)%len(lastLayer)])
							if err := r.PutRunLog(l); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
			}
		})
		b.Run(fmt.Sprintf("shards=%d/mode=closure", nShards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := r.Closure("e14-root-art", store.Down); err != nil {
					b.Fatal(err)
				}
			}
		})
		r.Close()
	}
}

// BenchmarkE15WAL measures the write-ahead group-commit and checkpoint
// subsystem: mode=ingest commits one batch of 16 runs through 16
// concurrent writers per iteration — durability=fsync pays one fsync per
// run, durability=group coalesces the 16 into a few shared batch commits;
// mode=reopen measures restart latency on a 600-run chain store, cold
// (full log scan + cold closure) vs from-checkpoint (snapshot load + warm
// cached closure).
func BenchmarkE15WAL(b *testing.B) {
	for _, d := range []store.Durability{store.DurabilityFsync, store.DurabilityGroup} {
		fs, err := store.OpenFileStoreWith(b.TempDir(), store.FileOptions{Durability: d})
		if err != nil {
			b.Fatal(err)
		}
		batch := 0
		b.Run(fmt.Sprintf("mode=ingest/durability=%s", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				batch++
				var wg sync.WaitGroup
				for w := 0; w < 16; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						l := experiments.E14Run(fmt.Sprintf("b15-%s-%d-%d", d, batch, w), batch,
							fmt.Sprintf("b15-in-%03d", (batch+w)%7))
						if err := fs.PutRunLog(l); err != nil {
							b.Error(err)
						}
					}(w)
				}
				wg.Wait()
			}
			m := fs.WALMetrics()
			if m.Batches > 0 {
				b.ReportMetric(float64(m.Appends)/float64(m.Batches), "runs/fsync")
			}
		})
		fs.Close()
	}

	// Reopen latency: one prebuilt checkpointed chain store.
	const chainLen = 600
	dir := b.TempDir()
	built, err := store.OpenFileStoreWith(dir, store.FileOptions{Durability: store.DurabilityGroup})
	if err != nil {
		b.Fatal(err)
	}
	cached := closurecache.New(built, closurecache.Options{SnapshotDir: dir})
	for i := 0; i < chainLen; i++ {
		if err := cached.PutRunLog(experiments.E15ChainRun(i)); err != nil {
			b.Fatal(err)
		}
	}
	const head = "e15-art-000000"
	if _, err := cached.Closure(head, store.Down); err != nil {
		b.Fatal(err)
	}
	if err := cached.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	cached.Close()
	b.Run("mode=reopen/state=warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fs, err := store.OpenFileStoreWith(dir, store.FileOptions{Durability: store.DurabilityGroup})
			if err != nil {
				b.Fatal(err)
			}
			c := closurecache.New(fs, closurecache.Options{SnapshotDir: dir})
			if _, err := c.Closure(head, store.Down); err != nil {
				b.Fatal(err)
			}
			c.Close()
		}
	})
	// Cold control: measured against a copy with the snapshots removed —
	// the log alone is authoritative.
	b.Run("mode=reopen/state=cold", func(b *testing.B) {
		// Tolerant removal: the harness re-invokes this closure with a
		// larger b.N after the files are already gone.
		if err := wal.RemoveCheckpoint(store.CheckpointPath(dir)); err != nil {
			b.Fatal(err)
		}
		if err := wal.RemoveCheckpoint(closurecache.SnapshotPath(dir)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fs, err := store.OpenFileStoreWith(dir, store.FileOptions{Durability: store.DurabilityGroup})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := fs.Closure(head, store.Down); err != nil {
				b.Fatal(err)
			}
			fs.Close()
		}
	})
}

// BenchmarkE16ClosurePushdown measures the depth-128 chain lineage of
// experiment E16 three ways: the single FileStore's one-lock BFS, the
// sharded router's pre-pushdown per-hop scatter/gather
// (ClosureViaExpand), and the closure pushdown (local fixpoint per shard +
// cross-shard frontier exchange). Allocations are reported — the pooled
// per-shard buffers are the E16 micro-opt observable.
func BenchmarkE16ClosurePushdown(b *testing.B) {
	const chainRuns = 128
	logs := make([]*provenance.RunLog, chainRuns)
	for i := range logs {
		logs[i] = experiments.E16ChainRun(i)
	}
	tail := fmt.Sprintf("e16-art-%06d", chainRuns)

	fs, err := store.OpenFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close()
	r, err := shardedstore.Open(b.TempDir(), 4, false)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	for _, l := range logs {
		if err := fs.PutRunLog(l); err != nil {
			b.Fatal(err)
		}
		if err := r.PutRunLog(l); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("mode=singlefile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fs.Closure(tail, store.Up); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mode=sharded-perhop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.ClosureViaExpand(tail, store.Up); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mode=sharded-pushdown", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.Closure(tail, store.Up); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE17StreamingExec replays experiment E17's multi-join PQL
// battery over the 64-run synthetic store through the eager reference
// executor, the streaming executor, and the streaming executor over a
// 4-shard router (parallel leaf scans), plus the Datalog provenance
// fixpoint under both evaluators. Allocations are reported — the
// pipelined iterators' avoided intermediate materialization is the
// headline observable.
func BenchmarkE17StreamingExec(b *testing.B) {
	const nRuns, execsPerRun = 64, 6
	mem := store.NewMemStore()
	sharded := shardedstore.NewMem(4)
	for i := 0; i < nRuns; i++ {
		if err := mem.PutRunLog(experiments.E17SynthLog(i, execsPerRun)); err != nil {
			b.Fatal(err)
		}
		if err := sharded.PutRunLog(experiments.E17SynthLog(i, execsPerRun)); err != nil {
			b.Fatal(err)
		}
	}
	queries := make([]*pql.Query, len(experiments.E17Queries))
	for i, src := range experiments.E17Queries {
		q, err := pql.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		queries[i] = q
	}
	battery := func(s store.Store, exec func(store.Store, *pql.Query) (*pql.Result, error)) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := exec(s, q); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	b.Run("mode=eager", battery(mem, pql.ExecuteEager))
	b.Run("mode=streaming", battery(mem, pql.Execute))
	b.Run("mode=streaming-sharded", battery(sharded, pql.Execute))

	fixpoint := func(reference bool) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := datalog.NewProvenanceProgram(mem)
				if err != nil {
					b.Fatal(err)
				}
				p.ReferenceEval = reference
				p.Evaluate()
			}
		}
	}
	b.Run("datalog=reference", fixpoint(true))
	b.Run("datalog=streaming", fixpoint(false))
}

// BenchmarkE18Replication measures the log-shipping replication path on
// a 4-shard group-commit primary served over the v1 HTTP API with one
// bootstrapped follower: mode=ship-apply ingests a small batch on the
// primary and drains it through the follower's catch-up (HTTP chunk
// stream + watermark-ordered replay); mode=read-follower and
// mode=read-primary compare the same lineage closure served from each
// node's HTTP face.
func BenchmarkE18Replication(b *testing.B) {
	router, err := shardedstore.OpenWith(b.TempDir(), 4, store.FileOptions{Durability: store.DurabilityGroup})
	if err != nil {
		b.Fatal(err)
	}
	defer router.Close()
	seedLogs, lastLayer := experiments.E14Seed(4, 16, 3)
	for _, l := range seedLogs {
		if err := router.PutRunLog(l); err != nil {
			b.Fatal(err)
		}
	}
	if err := router.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	src, err := replica.NewSource(router)
	if err != nil {
		b.Fatal(err)
	}
	primary := httptest.NewServer(collab.NewHandlerWith(collab.NewRepository(router), collab.HandlerOptions{
		Source: src,
		Status: func() api.ReplicationStatus { return src.Status(nil, nil) },
	}))
	defer primary.Close()

	f, err := replica.Open(replica.Options{Dir: b.TempDir(), Primary: primary.URL})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := f.CatchUp(); err != nil {
		b.Fatal(err)
	}
	follower := httptest.NewServer(collab.NewHandlerWith(collab.NewRepository(f.Store()), collab.HandlerOptions{
		ReadOnly: true,
		Lag:      f.Lag,
		Status:   f.Status,
	}))
	defer follower.Close()

	batch := 0
	b.Run("mode=ship-apply", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch++
			for k := 0; k < 4; k++ {
				l := experiments.E14Run(fmt.Sprintf("r%d-%d", batch, k), batch, lastLayer[(batch+k)%len(lastLayer)])
				if err := router.PutRunLog(l); err != nil {
					b.Fatal(err)
				}
			}
			if err := f.CatchUp(); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []struct {
		mode string
		url  string
	}{
		{"read-follower", follower.URL},
		{"read-primary", primary.URL},
	} {
		c := api.NewClient(n.url, nil)
		b.Run("mode="+n.mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.Lineage(lastLayer[i%len(lastLayer)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE19Obs measures the per-operation cost of the observability
// primitives that experiment E19 gates in aggregate: a labeled counter
// increment, a latency-histogram observation (clock read + bucket add),
// the same observation with the global gate off (what disabled
// instrumentation costs on the hot path), and a full snapshot + p99
// extraction as a /v1/metrics scrape would do it.
func BenchmarkE19Obs(b *testing.B) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("bench_ops_total", "", obs.L("op", "put"))
	hist := reg.Histogram("bench_op_seconds", "")
	for i := 0; i < 1000; i++ {
		hist.ObserveValue(uint64(i) * 1000)
	}

	b.Run("counter-inc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctr.Inc()
		}
	})
	b.Run("histogram-observe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hist.ObserveSince(obs.Now())
		}
	})
	b.Run("observe-disabled", func(b *testing.B) {
		prev := obs.SetEnabled(false)
		defer obs.SetEnabled(prev)
		for i := 0; i < b.N; i++ {
			hist.ObserveSince(obs.Now())
		}
	})
	b.Run("snapshot-p99", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if q := hist.Snapshot().Quantile(0.99); q == 0 {
				b.Fatal("zero p99")
			}
		}
	})
}

// BenchmarkE20Standing measures the per-ingest cost experiment E20 gates
// as a ratio: accepting one run into a store watched by 64 standing
// subscriptions (pattern-indexed incremental maintenance plus event
// drain), against the same ingest into a bare store — the difference is
// what the standing-query subsystem charges the write path.
func BenchmarkE20Standing(b *testing.B) {
	const chains = 8
	chainRun := func(c, i int) *provenance.RunLog {
		runID := fmt.Sprintf("b20-c%d-run-%06d", c, i)
		exec := fmt.Sprintf("b20-c%d-exec-%06d", c, i)
		in := fmt.Sprintf("b20-c%d-art-%06d", c, i)
		out := fmt.Sprintf("b20-c%d-art-%06d", c, i+1)
		l := &provenance.RunLog{}
		l.Run = provenance.Run{ID: runID, WorkflowID: "b20", Status: provenance.StatusOK}
		l.Executions = []*provenance.Execution{{ID: exec, RunID: runID, ModuleID: "step", ModuleType: "Synth", Status: provenance.StatusOK}}
		l.Artifacts = []*provenance.Artifact{{ID: in, RunID: runID, Type: "blob"}, {ID: out, RunID: runID, Type: "blob"}}
		l.Events = []provenance.Event{
			{Seq: 1, RunID: runID, Kind: provenance.EventArtifactUsed, ExecutionID: exec, ArtifactID: in},
			{Seq: 2, RunID: runID, Kind: provenance.EventArtifactGen, ExecutionID: exec, ArtifactID: out},
		}
		return l
	}
	seed := func(b *testing.B, st store.Store) {
		b.Helper()
		for i := 0; i < 12; i++ {
			for c := 0; c < chains; c++ {
				if err := st.PutRunLog(chainRun(c, i)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	b.Run("maintain-64subs", func(b *testing.B) {
		st := store.NewMemStore()
		defer st.Close()
		mgr := standing.NewManager(st, standing.Options{})
		tap := standing.NewTap(st, mgr)
		seed(b, tap)
		var ids []string
		var cursors []uint64
		for c := 0; c < chains; c++ {
			for _, spec := range []standing.Spec{
				{Kind: standing.KindClosure, Root: fmt.Sprintf("b20-c%d-art-%06d", c, 0), Dir: store.Down},
				{Kind: standing.KindClosure, Root: fmt.Sprintf("b20-c%d-art-%06d", c, 3), Dir: store.Down},
				{Kind: standing.KindClosure, Root: fmt.Sprintf("b20-c%d-art-%06d", c, 6), Dir: store.Up},
				{Kind: standing.KindTriple, Pattern: store.Triple{S: fmt.Sprintf("b20-c%d-exec-%06d", c, 2), P: store.PredGenerated}},
				{Kind: standing.KindTriple, Pattern: store.Triple{P: store.PredUsed, O: fmt.Sprintf("b20-c%d-art-%06d", c, 5)}},
				{Kind: standing.KindTriple, Pattern: store.Triple{S: fmt.Sprintf("b20-c%d-exec-%06d", c, 8)}},
				{Kind: standing.KindConjunctive, Query: "used(E, A), generated(E, B)", Output: []string{"A", "B"}},
				{Kind: standing.KindConjunctive, Query: "generated(E, A), partOfRun(E, R)", Output: []string{"A", "R"}},
			} {
				snap, err := mgr.Subscribe(spec)
				if err != nil {
					b.Fatal(err)
				}
				ids = append(ids, snap.ID)
				cursors = append(cursors, snap.Seq)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tap.PutRunLog(chainRun(i%chains, 12+i/chains)); err != nil {
				b.Fatal(err)
			}
			for s := range ids {
				evs, ok := mgr.EventsSince(ids[s], cursors[s])
				if !ok {
					b.Fatal("subscription vanished")
				}
				for _, ev := range evs {
					cursors[s] = ev.Seq
				}
			}
		}
	})
	b.Run("bare-ingest", func(b *testing.B) {
		st := store.NewMemStore()
		defer st.Close()
		seed(b, st)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.PutRunLog(chainRun(i%chains, 12+i/chains)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE21Failover measures the two per-operation costs behind
// experiment E21's failover guarantees: mode=ship-apply-faulty is the
// E18 ship-apply loop run through the fault-injecting transport (errors,
// latency, truncated bodies), i.e. what replication retention costs on a
// bad link; mode=epoch-observe is the fencing-epoch exchange every v1
// request pays (atomic compare + possible adoption).
func BenchmarkE21Failover(b *testing.B) {
	st, err := store.OpenFileStoreWith(b.TempDir(), store.FileOptions{Durability: store.DurabilityGroup})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	seedLogs, lastLayer := experiments.E14Seed(3, 12, 3)
	for _, l := range seedLogs {
		if err := st.PutRunLog(l); err != nil {
			b.Fatal(err)
		}
	}
	src, err := replica.NewSource(st)
	if err != nil {
		b.Fatal(err)
	}
	node, err := replica.NewNode(b.TempDir(), api.RolePrimary, nil)
	if err != nil {
		b.Fatal(err)
	}
	primary := httptest.NewServer(collab.NewHandlerWith(collab.NewRepository(st), collab.HandlerOptions{
		Source:   src,
		Failover: node,
		Status:   func() api.ReplicationStatus { return src.Status(nil, nil) },
	}))
	defer primary.Close()

	ft := faultinject.New(nil, faultinject.Options{
		Seed: 21, ErrorRate: 0.05, LatencyRate: 0.2, Latency: 200 * time.Microsecond, TruncateRate: 0.05,
	})
	var f *replica.Follower
	for attempt := 0; ; attempt++ {
		f, err = replica.Open(replica.Options{
			Dir: b.TempDir(), Primary: primary.URL, Client: ft.Client(),
			RequestTimeout: 2 * time.Second, MaxBatchBytes: 4096,
		})
		if err == nil {
			break
		}
		if attempt > 100 {
			b.Fatal(err)
		}
	}
	defer f.Close()

	batch := 0
	b.Run("mode=ship-apply-faulty", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch++
			l := experiments.E14Run(fmt.Sprintf("f%d", batch), batch, lastLayer[batch%len(lastLayer)])
			if err := st.PutRunLog(l); err != nil {
				b.Fatal(err)
			}
			for {
				if err := f.CatchUp(); err == nil {
					if _, behind := f.Lag(); behind == 0 {
						break
					}
				}
			}
		}
	})
	b.Run("mode=epoch-observe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			node.Observe(node.Epoch())
		}
	})
}

// TestExperimentSuiteSmoke runs the fast experiments end-to-end so `go
// test` exercises the harness itself (timing-heavy ones are covered by the
// benchmarks above and cmd/provbench).
func TestExperimentSuiteSmoke(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E5", "E7"} {
		r, err := experiments.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if r.Title == "FAILED" {
			t.Fatalf("%s failed: %s", id, r.Table)
		}
		if len(r.Table) == 0 {
			t.Fatalf("%s produced no table", id)
		}
	}
}
